"""LaneContext: the UDWeave intrinsics available inside an event handler.

One context exists per event activation.  It charges lane cycles (Table 2)
for every intrinsic, timestamps outgoing messages at the issue point within
the event, and implements the paper's §2.1.2 intrinsics:

* ``evw_new(networkID, label)`` — event word for a new thread on a lane;
* ``evw_update_event(evw, label)`` — re-label an event word;
* ``send_event(evw, *operands, cont=...)`` — message send / task creation;
* ``send_dram_read`` / ``send_dram_write`` — split-phase global memory;
* ``yield_()`` / ``yield_terminate()`` — software thread management.

Functional-simulation note: DRAM payload data is read/written when the
request *issues*; only the timing flows through the memory model.  UpDown
imposes no global memory ordering either, so correct programs (like all the
apps in this repo) must not rely on racing accesses — see DESIGN.md.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence, Union

from repro.machine.events import NEW_THREAD, MessageRecord
from repro.machine.lane import Lane

from . import eventword
from .thread import UDThread

#: Continuation sentinel: "no continuation" (paper's IGNRCONT).
IGNRCONT = None

#: Max words per split-phase DRAM read: responses arrive in operand
#: registers, of which there are eight (paper reads neighbors in groups
#: of 8 for exactly this reason).
MAX_DRAM_READ_WORDS = 8

LabelLike = Union[str, int]


class UDWeaveError(RuntimeError):
    """Raised for programming errors in UDWeave application code."""


class LaneContext:
    """Execution context of one event activation on one lane.

    Contexts are *pooled*: the runtime parks one instance per lane
    (``Lane.ctx_cache``) and calls :meth:`_reset` at each dispatch instead
    of constructing a fresh object per event — events on a lane execute
    atomically and nothing may retain a context across activations, so a
    single reusable instance per lane is safe and saves an allocation plus
    ``__init__`` on every event.  The fields fixed per lane (``runtime``,
    ``sim``, ``lane``, ``costs``) are set once at pool construction.
    """

    __slots__ = (
        "runtime",
        "sim",
        "lane",
        "costs",
        "thread",
        "tid",
        "record",
        "start",
        "cycles",
        "yielded",
        "terminated",
    )

    def __init__(
        self,
        runtime: "UpDownRuntime",  # noqa: F821 - runtime.py imports us
        lane: Lane,
        thread: UDThread,
        tid: int,
        record: MessageRecord,
        start: float,
    ) -> None:
        self.runtime = runtime
        self.sim = runtime.sim
        self.lane = lane
        #: Table 2 cost bundle, cached — intrinsics charge cycles on every
        #: call and ``self.costs`` beats the three-hop attribute chain.
        self.costs = runtime.config.costs
        self.thread = thread
        self.tid = tid
        self.record = record
        self.start = start
        self.cycles: float = float(self.costs.event_dispatch)
        self.yielded = False
        self.terminated = False

    def _reset(
        self, thread: UDThread, tid: int, record: MessageRecord, start: float
    ) -> None:
        """Rearm this pooled context for the next event activation."""
        self.thread = thread
        self.tid = tid
        self.record = record
        self.start = start
        self.cycles = float(self.costs.event_dispatch)
        self.yielded = False
        self.terminated = False

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------

    @property
    def network_id(self) -> int:
        """The current lane's networkID (the paper's ``curNetworkID``)."""
        return self.lane.network_id

    @property
    def node(self) -> int:
        return self.lane.node

    @property
    def accel(self) -> int:
        return self.lane.accel

    @property
    def time(self) -> float:
        """Current simulated time within this event (cycles)."""
        return self.start + self.cycles

    @property
    def config(self):
        return self.runtime.config

    # ------------------------------------------------------------------
    # Event words (paper §2.1.2 intrinsics)
    # ------------------------------------------------------------------

    @property
    def cevnt(self) -> int:
        """Event word of the *current* event (the paper's ``CEVNT``)."""
        label_id = self.record.label_id
        if label_id < 0:
            label_id = self.runtime.label_id(self.record.label)
        return eventword.encode(
            self.lane.network_id,
            label_id,
            thread=self.tid,
        )

    @property
    def ccont(self) -> Optional[int]:
        """The incoming continuation word (the paper's ``CCONT``)."""
        return self.record.continuation

    def evw_new(self, network_id: int, label: LabelLike) -> int:
        """Event word for event ``label`` on a *new* thread at ``network_id``."""
        return eventword.encode(
            network_id, self.runtime.resolve_label_id(label, self.thread)
        )

    def evw_update_event(self, evw: int, label: LabelLike) -> int:
        """Re-label an event word; thread context and lane are unchanged."""
        return eventword.with_label(
            evw, self.runtime.resolve_label_id(label, self.thread)
        )

    def self_evw(self, label: LabelLike) -> int:
        """Event word addressing *this* thread at another of its events
        (the common ``evw_update_event(CEVNT, label)`` idiom)."""
        return eventword.encode(
            self.lane.network_id,
            self.runtime.resolve_label_id(label, self.thread),
            thread=self.tid,
        )

    # ------------------------------------------------------------------
    # Messaging
    # ------------------------------------------------------------------

    def send_event(
        self,
        evw: Optional[int],
        *operands: Any,
        cont: Optional[int] = IGNRCONT,
        delay: float = 0.0,
    ) -> None:
        """Send a message (create a task / invoke an event) — ``send_event``.

        ``evw=None`` (an ignored continuation) is a silent no-op so reply
        sites need not branch on whether a caller wanted an answer.

        ``delay`` holds the message back by that many cycles before it
        enters the fabric — the simulation rendering of a software delay
        loop (used by KVMSR's quiescence re-polls).  The issuing lane is
        modeled as free during the delay; see DESIGN.md.
        """
        if evw is None:
            return
        if delay < 0:
            raise UDWeaveError("send delay cannot be negative")
        costs = self.costs
        self.cycles += (
            costs.send_message_with_cont if cont is not None else costs.send_message
        )
        lane = self.lane
        record = self.runtime.record_for(evw, operands, cont, lane.network_id)
        self.sim.send(record, self.start + self.cycles + delay, lane.node)

    def send_reply(self, *operands: Any, cont: Optional[int] = IGNRCONT) -> None:
        """Send to the incoming continuation (no-op when IGNRCONT)."""
        self.send_event(self.ccont, *operands, cont=cont)

    def spawn(
        self,
        network_id: int,
        label: LabelLike,
        *operands: Any,
        cont: Optional[int] = IGNRCONT,
    ) -> None:
        """Sugar: ``send_event(evw_new(network_id, label), ...)``.

        Flattened: spawns dominate KVMSR traffic (every map task and every
        emitted tuple is one), so the record is built directly instead of
        packing an event word in ``evw_new`` only for ``record_for`` to
        unpack it again.  Semantics are identical, including the
        out-of-range ``network_id`` error ``evw_new`` raised.
        """
        runtime = self.runtime
        label_id = runtime.resolve_label_id(label, self.thread)
        if network_id < 0 or network_id > eventword.MAX_NETWORK_ID:
            raise eventword.EventWordError(
                f"networkID {network_id} out of range"
            )
        costs = self.costs
        self.cycles += (
            costs.send_message_with_cont if cont is not None else costs.send_message
        )
        lane = self.lane
        record = MessageRecord(
            network_id,
            NEW_THREAD,
            runtime.program.label_name(label_id),
            operands,
            cont,
            lane.network_id,
            "msg",
            label_id,
        )
        self.sim.send(record, self.start + self.cycles, lane.node)

    def spawn_resolved(
        self,
        network_id: int,
        label_id: int,
        label_name: str,
        *operands: Any,
        cont: Optional[int] = IGNRCONT,
    ) -> None:
        """:meth:`spawn` for a pre-resolved, pre-validated target.

        The packet-aware inner loops (KVMSR's ``_pump`` chain and
        ``kv_emit``) issue millions of spawns whose label is fixed for
        the whole job and whose ``network_id`` comes from a binding that
        was range-checked at job creation; re-resolving the label and
        re-checking the range per send is pure host overhead.  The
        charged cycles — and therefore every simulated result — are
        identical to :meth:`spawn`.
        """
        costs = self.costs
        self.cycles += (
            costs.send_message_with_cont if cont is not None else costs.send_message
        )
        lane = self.lane
        record = MessageRecord(
            network_id,
            NEW_THREAD,
            label_name,
            operands,
            cont,
            lane.network_id,
            "msg",
            label_id,
        )
        self.sim.send(record, self.start + self.cycles, lane.node)

    # ------------------------------------------------------------------
    # Global memory (split-phase)
    # ------------------------------------------------------------------

    def send_dram_read(
        self,
        va: int,
        nwords: int,
        return_label: LabelLike,
        tag: Any = None,
    ) -> None:
        """Issue a split-phase DRAM read of ``nwords`` ≤ 8 words at ``va``.

        The response is delivered to *this thread* at ``return_label`` with
        the word values as operands (prefixed by ``tag`` when given, so a
        thread with several outstanding reads can tell them apart).
        """
        if not (1 <= nwords <= MAX_DRAM_READ_WORDS):
            raise UDWeaveError(
                f"DRAM reads move 1..{MAX_DRAM_READ_WORDS} words, got {nwords}"
            )
        self.cycles += self.costs.send_dram_with_cont
        runtime = self.runtime
        mem_node, local_offset, values = runtime.gmem.read_words_translated(
            va, nwords
        )
        operands = values if tag is None else (tag, *values)
        label_id = runtime.resolve_label_id(return_label, self.thread)
        nwid = self.lane.network_id
        response = MessageRecord(
            nwid,
            self.tid,
            runtime.label_name(label_id),
            operands,
            None,
            nwid,
            "dram",
            label_id,
        )
        self.sim.dram_transaction(
            response,
            self.time,
            src_node=self.lane.node,
            memory_node=mem_node,
            nbytes=nwords * 8,
            is_read=True,
            local_offset=local_offset,
        )

    def dram_read_blocking(self, va: int, nwords: int) -> tuple:
        """Read ``nwords`` ≤ 8 words at ``va``, stalling this event.

        The access goes through the same split-phase cost path as
        :meth:`send_dram_read` (DRAM stats, channel occupancy, remote
        transit), but instead of scheduling a response event the lane
        stalls: this event's cycle count is extended to cover the round
        trip.  Use for read-modify-write sequences that must complete
        atomically within one event, like the combining cache's
        accumulate-flush; split-phase reads remain the right tool for
        anything latency-sensitive.
        """
        if not (1 <= nwords <= MAX_DRAM_READ_WORDS):
            raise UDWeaveError(
                f"DRAM reads move 1..{MAX_DRAM_READ_WORDS} words, got {nwords}"
            )
        self.cycles += self.costs.send_dram_with_cont
        mem_node, local_offset, values = self.runtime.gmem.read_words_translated(
            va, nwords
        )
        t_back = self.sim.dram_transaction(
            None,
            self.time,
            src_node=self.lane.node,
            memory_node=mem_node,
            nbytes=nwords * 8,
            is_read=True,
            local_offset=local_offset,
            blocking=True,
        )
        if t_back > self.start + self.cycles:
            self.cycles = t_back - self.start
        return values

    def send_dram_write(
        self,
        va: int,
        values: Sequence[Any],
        ack_label: Optional[LabelLike] = None,
        tag: Any = None,
    ) -> None:
        """Issue a split-phase DRAM write; optional completion ack event."""
        if len(values) < 1:
            raise UDWeaveError("DRAM write needs at least one word")
        costs = self.costs
        self.cycles += (
            costs.send_dram_with_cont if ack_label is not None else costs.send_dram
        )
        mem_node, local_offset = self.runtime.gmem.write_words_translated(
            va, list(values)
        )
        response = None
        if ack_label is not None:
            label_id = self.runtime.resolve_label_id(ack_label, self.thread)
            nwid = self.lane.network_id
            response = MessageRecord(
                nwid,
                self.tid,
                self.runtime.label_name(label_id),
                () if tag is None else (tag,),
                None,
                nwid,
                "dram",
                label_id,
            )
        self.sim.dram_transaction(
            response,
            self.time,
            src_node=self.lane.node,
            memory_node=mem_node,
            nbytes=len(values) * 8,
            is_read=False,
            local_offset=local_offset,
        )

    # ------------------------------------------------------------------
    # Scratchpad
    # ------------------------------------------------------------------

    def sp_read(self, key: Any, default: Any = None) -> Any:
        """Load from the lane-private scratchpad (1 cycle)."""
        self.cycles += self.costs.scratchpad_access
        return self.lane.scratchpad.get(key, default)

    def sp_write(self, key: Any, value: Any) -> None:
        """Store to the lane-private scratchpad (1 cycle)."""
        self.cycles += self.costs.scratchpad_access
        self.lane.scratchpad[key] = value

    def sp_delete(self, key: Any) -> None:
        """Remove a key from the lane-private scratchpad (1 cycle).

        Unlike ``sp_write(key, None)`` this frees the slot: drained
        combining-cache entries must not linger as tombstones that a
        capacity audit (or a later epoch) would still see.
        """
        self.cycles += self.costs.scratchpad_access
        self.lane.scratchpad.pop(key, None)

    def sp_malloc(self, nwords: int) -> int:
        """Reserve scratchpad words on this lane (see spMalloc)."""
        return self.runtime.spalloc.sp_malloc(self.lane.network_id, nwords)

    # -- accelerator-pooled scratchpad (§2.1.1: "primarily lane private,
    # but can be pooled among the 64 lanes in a UpDown accelerator") -----

    POOLED_ACCESS_CYCLES = 3

    def _pooled_lane(self, lane_in_accel: int) -> "Lane":
        cfg = self.config
        if not (0 <= lane_in_accel < cfg.lanes_per_accel):
            raise UDWeaveError(
                f"pooled scratchpad index {lane_in_accel} outside the "
                f"accelerator's {cfg.lanes_per_accel} lanes"
            )
        nwid = cfg.first_lane_of_accel(self.lane.accel) + lane_in_accel
        sim = self.sim
        target = sim.lane(nwid)
        if sim._parked_total and target.parked:
            # Batched dispatch: a mid-event peek at a sibling's
            # scratchpad is an observation point — parked records that
            # would have popped before this event must land first.
            sim._flush_pooled(target, sim.now, self.lane.network_id)
        return target

    def sp_read_pooled(self, lane_in_accel: int, key: Any, default: Any = None):
        """Load from a sibling lane's scratchpad within this accelerator.

        Costs a few cycles (on-chip crossbar) instead of the 1-cycle
        private access.  Reads race with the sibling's own writes exactly
        as on hardware; use for read-mostly pooled state."""
        self.cycles += self.POOLED_ACCESS_CYCLES
        return self._pooled_lane(lane_in_accel).scratchpad.get(key, default)

    def sp_write_pooled(self, lane_in_accel: int, key: Any, value: Any) -> None:
        """Store into a sibling lane's scratchpad within this accelerator."""
        self.cycles += self.POOLED_ACCESS_CYCLES
        self._pooled_lane(lane_in_accel).scratchpad[key] = value

    # ------------------------------------------------------------------
    # Compute & thread management
    # ------------------------------------------------------------------

    def ud_print(self, message: str) -> None:
        """Emit a BASIM_PRINT-style log line (artifact appendix).

        Free of simulated cost (the real simulator's prints are host-side
        too); entries carry the current tick, lane, thread, and event
        label, and are collected on ``runtime.udlog``.
        """
        self.runtime.udlog.emit(
            self.time,
            self.lane.network_id,
            self.tid,
            self.record.label,
            message,
        )

    def work(self, instructions: float) -> None:
        """Charge ``instructions`` of straight-line compute to this event."""
        if instructions < 0:
            raise UDWeaveError("cannot charge negative work")
        self.cycles += instructions * self.costs.instruction

    def yield_(self) -> None:
        """End the event, preserving the thread (paper's ``yield``)."""
        if self.yielded or self.terminated:
            raise UDWeaveError("event already ended")
        self.cycles += self.costs.thread_yield
        self.yielded = True

    def yield_terminate(self) -> None:
        """End the event and deallocate the thread (``yield_terminate``)."""
        if self.yielded or self.terminated:
            raise UDWeaveError("event already ended")
        self.cycles += self.costs.thread_deallocate
        self.terminated = True
