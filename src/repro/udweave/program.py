"""Program image: the registry of thread classes and event labels.

A UDWeave program is a set of thread definitions, each containing events
(paper §2.1.1).  In this embedded-Python rendering, a thread definition is
a subclass of :class:`repro.udweave.thread.UDThread` whose event handlers
are methods decorated with ``@event``.  Registering the class with a
:class:`Program` assigns each event a stable integer *label ID* — the value
carried in event words — and records which class owns it so the dispatcher
can instantiate new threads on demand.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from .eventword import MAX_LABEL_ID, EventWordError


class ProgramError(RuntimeError):
    """Raised for duplicate registrations or unknown labels."""


class Program:
    """Label registry mapping ``Class::event`` names to IDs and back."""

    def __init__(self) -> None:
        self._label_ids: Dict[str, int] = {}
        self._label_names: List[str] = []
        #: label id -> (thread class, handler attribute name)
        self._handlers: Dict[int, Tuple[type, str]] = {}
        self._classes: Dict[str, type] = {}
        #: label id -> (thread class, handler function) — the dispatch
        #: table.  Indexing a list by the interned ``label_id`` replaces
        #: a string dict lookup + attribute ``getattr`` on every event;
        #: the function is called unbound (``func(thread, ctx, *ops)``)
        #: so no bound-method object is created per dispatch.
        self.handler_table: List[Tuple[type, object]] = []

    def register(self, thread_cls: type) -> type:
        """Register a thread class and all of its ``@event`` handlers.

        Returns the class so it can be used as a decorator::

            program = Program()

            @program.register
            class TExample(UDThread):
                @event
                def reduction(self, ctx, n): ...
        """
        name = thread_cls.__name__
        if name in self._classes:
            if self._classes[name] is thread_cls:
                return thread_cls  # idempotent re-registration
            raise ProgramError(f"thread class name {name!r} already registered")
        events = _collect_events(thread_cls)
        if not events:
            raise ProgramError(f"{name} defines no @event handlers")
        self._classes[name] = thread_cls
        for attr in events:
            label = f"{name}::{attr}"
            label_id = len(self._label_names)
            if label_id > MAX_LABEL_ID:
                raise EventWordError("program exceeds the event-label space")
            self._label_ids[label] = label_id
            self._label_names.append(label)
            self._handlers[label_id] = (thread_cls, attr)
            # getattr on the class resolves through the MRO, so inherited
            # events dispatch to the most-derived override.
            self.handler_table.append((thread_cls, getattr(thread_cls, attr)))
        return thread_cls

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------

    def label_id(self, label: str) -> int:
        """Integer ID for a ``Class::event`` label string."""
        try:
            return self._label_ids[label]
        except KeyError:
            raise ProgramError(f"unknown event label {label!r}") from None

    def label_name(self, label_id: int) -> str:
        try:
            return self._label_names[label_id]
        except IndexError:
            raise ProgramError(f"unknown label id {label_id}") from None

    def handler(self, label_id: int) -> Tuple[type, str]:
        """(thread class, handler attribute) owning ``label_id``."""
        try:
            return self._handlers[label_id]
        except KeyError:
            raise ProgramError(f"unknown label id {label_id}") from None

    def labels(self) -> Iterable[str]:
        return iter(self._label_names)

    def classes(self) -> Iterable[type]:
        return iter(self._classes.values())

    def label_of(self, thread_cls: type, event_name: str) -> str:
        """Canonical label string for a class + event handler name."""
        label = f"{thread_cls.__name__}::{event_name}"
        if label not in self._label_ids:
            raise ProgramError(f"{label} is not registered")
        return label


def _collect_events(thread_cls: type) -> List[str]:
    """Attribute names of ``@event``-decorated methods, in MRO order."""
    names: List[str] = []
    seen = set()
    for klass in reversed(thread_cls.__mro__):
        for attr, value in vars(klass).items():
            if getattr(value, "_udweave_event", False) and attr not in seen:
                seen.add(attr)
                names.append(attr)
    return names
