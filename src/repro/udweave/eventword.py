"""Event words: the 64-bit values that name computation locations.

Paper §2.1.1: *"An event executes in a computation location, called a lane
and identifiable by a network ID, and has a thread context ID.  Static
properties include the number of operands and the event label.  Altogether,
they form a 64-bit value called the event word."*

Bit layout (64 bits total)::

    [63:62]  flags      (NEW_THREAD marker, HOST marker)
    [61:46]  thread     (16-bit thread context ID on the target lane)
    [45:32]  reserved   (operand-count hint; informational)
    [31:16]  label      (16-bit event-label ID from the program registry)
    [15:0]   --
    [31:0]   is actually split: networkID occupies [25:0]

Concretely we pack: ``flags(2) | thread(16) | label(16) | networkID(30)``.
30 bits of networkID covers the full 33 M-lane machine with headroom.
"""

from __future__ import annotations

from typing import Tuple

_NWID_BITS = 30
_LABEL_BITS = 16
_THREAD_BITS = 16

_NWID_MASK = (1 << _NWID_BITS) - 1
_LABEL_MASK = (1 << _LABEL_BITS) - 1
_THREAD_MASK = (1 << _THREAD_BITS) - 1

_LABEL_SHIFT = _NWID_BITS
_THREAD_SHIFT = _NWID_BITS + _LABEL_BITS
_FLAG_SHIFT = _NWID_BITS + _LABEL_BITS + _THREAD_BITS

#: flag values
FLAG_NEW_THREAD = 0b01
FLAG_HOST = 0b10

#: thread-selector sentinel mirroring :data:`repro.machine.events.NEW_THREAD`
NEW_THREAD_SENTINEL = _THREAD_MASK

MAX_NETWORK_ID = _NWID_MASK
MAX_LABEL_ID = _LABEL_MASK
MAX_THREAD_ID = _THREAD_MASK - 1  # top value is the NEW_THREAD sentinel


class EventWordError(ValueError):
    """Raised for out-of-range fields or malformed event words."""


def encode(
    network_id: int,
    label_id: int,
    thread: int | None = None,
    host: bool = False,
) -> int:
    """Pack an event word.

    ``thread=None`` requests a *new* thread at the target lane
    (``evw_new`` semantics); a concrete thread ID addresses an existing
    thread context.  ``host=True`` marks the host mailbox pseudo-target.
    """
    if not (0 <= network_id <= MAX_NETWORK_ID):
        raise EventWordError(f"networkID {network_id} out of range")
    if not (0 <= label_id <= MAX_LABEL_ID):
        raise EventWordError(f"label id {label_id} out of range")
    flags = 0
    if thread is None:
        tfield = NEW_THREAD_SENTINEL
        flags |= FLAG_NEW_THREAD
    else:
        if not (0 <= thread <= MAX_THREAD_ID):
            raise EventWordError(f"thread id {thread} out of range")
        tfield = thread
    if host:
        flags |= FLAG_HOST
    return (
        (flags << _FLAG_SHIFT)
        | (tfield << _THREAD_SHIFT)
        | (label_id << _LABEL_SHIFT)
        | network_id
    )


def decode(evw: int) -> Tuple[int, int, int | None, bool]:
    """Unpack ``(network_id, label_id, thread_or_None, is_host)``."""
    if evw < 0 or evw >= (1 << 64):
        raise EventWordError(f"event word {evw:#x} is not a 64-bit value")
    network_id = evw & _NWID_MASK
    label_id = (evw >> _LABEL_SHIFT) & _LABEL_MASK
    tfield = (evw >> _THREAD_SHIFT) & _THREAD_MASK
    flags = evw >> _FLAG_SHIFT
    thread: int | None
    if flags & FLAG_NEW_THREAD:
        thread = None
    else:
        thread = tfield
    return network_id, label_id, thread, bool(flags & FLAG_HOST)


def with_label(evw: int, new_label_id: int) -> int:
    """``evw_update_event``: replace the label, keep every other field.

    Paper §2.1.2: *"returns an event word with the new event name, other
    fields (e.g., thread context ID) remain unchanged."*
    """
    if not (0 <= new_label_id <= MAX_LABEL_ID):
        raise EventWordError(f"label id {new_label_id} out of range")
    return (evw & ~(_LABEL_MASK << _LABEL_SHIFT)) | (new_label_id << _LABEL_SHIFT)


def network_id_of(evw: int) -> int:
    return evw & _NWID_MASK


def label_id_of(evw: int) -> int:
    return (evw >> _LABEL_SHIFT) & _LABEL_MASK
