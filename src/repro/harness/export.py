"""CSV export of benchmark series — the data behind each figure.

Each Figure 9-12 benchmark prints a text table; this module writes the
same series as machine-readable CSV so downstream users can re-plot the
figures with their tool of choice.

Also hosts the simulation-level exporters: a recorded run (see
``repro.observe``) exports as a Chrome ``trace_event`` JSON timeline or
as the artifact-style ``perflog.tsv`` counter log.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Mapping, Optional, Sequence

from repro.observe import write_chrome_trace as _write_chrome_trace
from repro.observe import write_perflog as _write_perflog


def write_speedup_csv(
    path,
    node_counts: Sequence[int],
    series: Mapping[str, Mapping[int, float]],
    reported: Optional[Mapping[str, Mapping[int, float]]] = None,
) -> Path:
    """One row per node count; measured (and optionally paper) columns
    per graph."""
    path = Path(path)
    names = list(series)
    header = ["nodes"]
    for name in names:
        header.append(f"{name}_measured")
        if reported and name in reported:
            header.append(f"{name}_paper")
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(header)
        for nodes in node_counts:
            row: list = [nodes]
            for name in names:
                row.append(series[name].get(nodes, ""))
                if reported and name in reported:
                    row.append(reported[name].get(nodes, ""))
            writer.writerow(row)
    return path


def write_series_csv(
    path, rows: Sequence[Sequence], columns: Sequence[str]
) -> Path:
    """Write a generic (rows, columns) series as CSV; returns the path."""
    path = Path(path)
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(columns)
        writer.writerows(rows)
    return path


def read_csv(path) -> list:
    """Round-trip helper for tests."""
    with open(path, newline="") as fh:
        return list(csv.reader(fh))


def _sim_recorder(sim):
    if sim.recorder is None:
        raise ValueError(
            "simulation has no flight recorder: build the runtime with "
            "record=... (see repro.observe)"
        )
    return sim.recorder


def write_chrome_trace(path, sim) -> Path:
    """Chrome ``trace_event`` JSON for a recorded simulation — open in
    chrome://tracing or Perfetto.  Timestamps are simulated microseconds."""
    return _write_chrome_trace(
        path,
        _sim_recorder(sim),
        sim.config.clock_hz,
        scalars=sim.stats.scalar_snapshot(),
    )


def write_perflog_tsv(path, sim) -> Path:
    """The artifact-style ``perflog.tsv`` (kind/name/field/value rows) for
    a recorded simulation; scalars are included even without a recorder."""
    return _write_perflog(
        path,
        sim.recorder,
        scalars=sim.stats.scalar_snapshot(),
        busy_cycles_by_lane=dict(sim.stats.busy_cycles_by_lane),
    )
