"""Strong-scaling sweeps and speedup/shape analysis (Figures 9-12)."""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

from .runner import RunRecord

#: the artifact's node sweep for PR and BFS (Figure 9 left/center)
PR_BFS_NODES = (1, 2, 4, 8, 16, 32, 64, 128, 256)

#: the TC sweep extends to 1024 nodes (Figure 9 right)
TC_NODES = (1, 4, 8, 16, 32, 64, 128, 256, 512, 1024)


def sweep(
    run: Callable[..., RunRecord],
    node_counts: Sequence[int],
    **kwargs,
) -> List[RunRecord]:
    """Run one app over a node sweep (fixed problem = strong scaling)."""
    return [run(nodes=n, **kwargs) for n in node_counts]


def speedups(records: Sequence[RunRecord]) -> Dict[int, float]:
    """Per-node speedup over the smallest configuration, the normalization
    the artifact's Tables 8-12 use."""
    if not records:
        return {}
    base = records[0].seconds
    if base <= 0:
        raise ValueError("baseline time must be positive")
    return {r.nodes: base / r.seconds for r in records}


def scaling_efficiency(records: Sequence[RunRecord]) -> Dict[int, float]:
    """Speedup / (nodes ratio): 1.0 = perfectly linear."""
    sp = speedups(records)
    base_nodes = records[0].nodes
    return {n: s / (n / base_nodes) for n, s in sp.items()}


def is_monotone_nondecreasing(
    values: Sequence[float], slack: float = 0.05
) -> bool:
    """Shape check used to compare against the paper's curves: each step
    may regress at most ``slack`` relatively (simulation noise)."""
    return all(
        b >= a * (1.0 - slack) for a, b in zip(values, values[1:])
    )


def shape_agreement(
    measured: Dict[int, float], reported: Dict[int, float]
) -> float:
    """Spearman-style rank agreement between measured and paper-reported
    speedup series over their common node counts (1.0 = same ordering)."""
    common = sorted(set(measured) & set(reported))
    if len(common) < 3:
        raise ValueError("need at least three common points")
    m = _ranks([measured[n] for n in common])
    r = _ranks([reported[n] for n in common])
    n = len(common)
    d2 = sum((a - b) ** 2 for a, b in zip(m, r))
    return 1.0 - 6.0 * d2 / (n * (n * n - 1))


def _ranks(values: Sequence[float]) -> List[float]:
    """Average (fractional) ranks: tied values share the mean of the rank
    positions they span, so the rank vector — and therefore
    :func:`shape_agreement` — does not depend on input order when two node
    counts tie on speedup."""
    order = sorted(range(len(values)), key=lambda i: values[i])
    ranks = [0.0] * len(values)
    i = 0
    n = len(order)
    while i < n:
        j = i
        while j + 1 < n and values[order[j + 1]] == values[order[i]]:
            j += 1
        avg = (i + j) / 2.0
        for k in range(i, j + 1):
            ranks[order[k]] = avg
        i = j + 1
    return ranks
