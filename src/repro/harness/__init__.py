"""Experiment harness: runners, node sweeps, paper-style reports, LoC."""

from .export import (
    read_csv,
    write_chrome_trace,
    write_perflog_tsv,
    write_series_csv,
    write_speedup_csv,
)
from .inspect import (
    event_report,
    full_report,
    lane_report,
    memory_report,
    occupancy_report,
)
from .loc import TABLE5_MAP, TABLE5_PAPER_LOC, count_loc, repo_loc, table5_loc
from .report import series_table, shape_summary, speedup_table
from .runner import (
    DEFAULT_MAX_EVENTS,
    RunRecord,
    bench_config,
    run_bfs,
    run_ingestion,
    run_pagerank,
    run_partial_match,
    run_service,
    run_triangle_count,
)
from .sweep import (
    PR_BFS_NODES,
    TC_NODES,
    is_monotone_nondecreasing,
    scaling_efficiency,
    shape_agreement,
    speedups,
    sweep,
)

__all__ = [
    "RunRecord",
    "bench_config",
    "run_pagerank",
    "run_bfs",
    "run_triangle_count",
    "run_ingestion",
    "run_partial_match",
    "run_service",
    "DEFAULT_MAX_EVENTS",
    "sweep",
    "speedups",
    "scaling_efficiency",
    "shape_agreement",
    "is_monotone_nondecreasing",
    "PR_BFS_NODES",
    "TC_NODES",
    "speedup_table",
    "series_table",
    "shape_summary",
    "count_loc",
    "table5_loc",
    "repo_loc",
    "TABLE5_MAP",
    "TABLE5_PAPER_LOC",
    "write_speedup_csv",
    "write_series_csv",
    "write_chrome_trace",
    "write_perflog_tsv",
    "read_csv",
    "memory_report",
    "lane_report",
    "event_report",
    "occupancy_report",
    "full_report",
]
