"""Paper-style text reports: the rows/series Figures 9-12 and Tables 8-12
print, with the paper-reported numbers alongside the measured ones."""

from __future__ import annotations

from typing import Mapping, Optional, Sequence


def speedup_table(
    title: str,
    node_counts: Sequence[int],
    series: Mapping[str, Mapping[int, float]],
    reported: Optional[Mapping[str, Mapping[int, float]]] = None,
) -> str:
    """Render a Table 8/9/10-style speedup table.

    ``series`` maps graph name -> {nodes: measured speedup}; ``reported``
    optionally maps graph name -> {nodes: paper speedup} printed as
    ``(paper x.xx)`` next to each measured value.
    """
    lines = [title, "=" * len(title)]
    names = list(series)
    header = f"{'Nodes':>6} " + " ".join(f"{n:>22}" for n in names)
    lines.append(header)
    lines.append("-" * len(header))
    for nodes in node_counts:
        cells = []
        for name in names:
            got = series[name].get(nodes)
            cell = "-" if got is None else f"{got:8.2f}"
            if reported and name in reported:
                ref = reported[name].get(nodes)
                cell += "        -" if ref is None else f" (paper {ref:6.2f})"
            cells.append(f"{cell:>22}")
        lines.append(f"{nodes:>6} " + " ".join(cells))
    return "\n".join(lines)


def series_table(
    title: str,
    rows: Sequence[tuple],
    columns: Sequence[str],
) -> str:
    """Generic aligned table for throughput/latency series."""
    lines = [title, "=" * len(title)]
    header = " ".join(f"{c:>16}" for c in columns)
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        cells = []
        for v in row:
            if isinstance(v, float):
                cells.append(f"{v:>16.4g}")
            else:
                cells.append(f"{v!s:>16}")
        lines.append(" ".join(cells))
    return "\n".join(lines)


def shape_summary(
    name: str,
    measured: Mapping[int, float],
    reported: Mapping[int, float],
    agreement: float,
) -> str:
    """One-line measured-vs-paper peak + rank-agreement summary."""
    peak_m = max(measured.values())
    peak_r = max(reported.values())
    return (
        f"{name}: measured peak speedup {peak_m:.1f}x "
        f"(paper {peak_r:.1f}x), rank agreement {agreement:+.2f}"
    )
