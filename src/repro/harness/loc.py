"""Lines-of-code metrics: the Table 5 programmability reproduction.

The paper measures LoC for application kernels and library abstractions
as a programmability proxy (§5.4.2).  This module counts non-blank,
non-comment lines for this repo's analogs of each Table 5 row, so
``benchmarks/bench_table5_loc.py`` can print a measured-vs-paper table.
"""

from __future__ import annotations

import io
import tokenize
from pathlib import Path
from typing import Dict, Iterable, Mapping

import repro

_PKG_ROOT = Path(repro.__file__).parent

#: Table 5 rows -> the module files implementing this repo's analog.
TABLE5_MAP: Mapping[str, tuple] = {
    # ISBs (application kernels)
    "PR": ("apps/pagerank.py",),
    "BFS": ("apps/bfs.py",),
    "TC": ("apps/triangle.py",),
    # Data abstractions
    "Scalable Hash Table": ("datastruct/sht.py",),
    "Parallel Graph Abstraction": ("datastruct/pgraph.py",),
    # Compute abstractions
    "KV map-shuffle-reduce": (
        "kvmsr/engine.py",
        "kvmsr/binding.py",
        "kvmsr/iterator.py",
    ),
    "do_all (uses KVMSR)": ("kvmsr/doall.py",),
    "Scalable Global Sort": ("datastruct/sort.py",),
    "SHMEM (put/get, reductions)": ("datastruct/shmem.py",),
    # Memory abstractions
    "spMalloc (scratchpad malloc)": ("memmodel/spmalloc.py",),
    "DRAMmalloc (global malloc)": ("memmodel/drammalloc.py", "memmodel/translation.py"),
    "Combining Cache (fetch&add)": ("kvmsr/combining.py",),
}

#: the paper's UD column of Table 5, for side-by-side reporting
TABLE5_PAPER_LOC: Mapping[str, int] = {
    "PR": 218,
    "BFS": 226,
    "TC": 312,
    "Scalable Hash Table": 4764,
    "Parallel Graph Abstraction": 170,
    "KV map-shuffle-reduce": 1586,
    "do_all (uses KVMSR)": 33,
    "Scalable Global Sort": 158,
    "SHMEM (put/get, reductions)": 1914,
    "spMalloc (scratchpad malloc)": 83,
    "DRAMmalloc (global malloc)": 52,
    "Combining Cache (fetch&add)": 232,
}


def count_loc(path: Path) -> int:
    """Non-blank, non-comment, non-docstring lines of one Python file.

    A line counts when it carries at least one *code* token.  Docstrings
    (STRING tokens in statement position) and comments are not code;
    a trailing comment does not disqualify the code before it.
    """
    source = path.read_text()
    tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    noise = {
        tokenize.NL,
        tokenize.NEWLINE,
        tokenize.INDENT,
        tokenize.DEDENT,
        tokenize.COMMENT,
        tokenize.ENDMARKER,
        tokenize.ENCODING,
    }
    code_lines: set[int] = set()
    at_statement_start = True  # docstring = STRING opening a statement
    for tok in tokens:
        if tok.type in (tokenize.NEWLINE, tokenize.NL):
            at_statement_start = True
            continue
        if tok.type in noise:
            continue
        if tok.type == tokenize.STRING and at_statement_start:
            at_statement_start = False
            continue  # docstring / bare string statement
        at_statement_start = False
        code_lines.update(range(tok.start[0], tok.end[0] + 1))
    return len(code_lines)


def table5_loc() -> Dict[str, int]:
    """Measured LoC for each Table 5 row's analog in this repo."""
    out: Dict[str, int] = {}
    for row, files in TABLE5_MAP.items():
        out[row] = sum(count_loc(_PKG_ROOT / f) for f in files)
    return out


def repo_loc(subdirs: Iterable[str] = ("",)) -> int:
    """Total package LoC (all .py files under the given subdirectories)."""
    total = 0
    for sub in subdirs:
        for path in (_PKG_ROOT / sub).rglob("*.py"):
            total += count_loc(path)
    return total
