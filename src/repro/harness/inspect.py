"""Post-run machine inspection: where did the time and traffic go?

Text reports over a finished simulation, for the performance-debugging
loop the paper's §5.3 placement experiments imply (find the hot memory
node, change one DRAMmalloc number, re-run).
"""

from __future__ import annotations

from repro.machine.simulator import Simulator


def memory_report(sim: Simulator, top: int = 8) -> str:
    """Per-node DRAM bytes served, hottest first — the Figure 12
    diagnosis view (a skewed column means placement is the bottleneck)."""
    rows = [
        (node, sim.memory.bytes_served(node))
        for node in range(sim.config.nodes)
    ]
    rows.sort(key=lambda r: -r[1])
    total = sum(b for _n, b in rows) or 1
    lines = ["node   bytes_served   share"]
    for node, served in rows[:top]:
        lines.append(f"{node:4}   {served:12}   {served / total:6.1%}")
    mean = total / sim.config.nodes
    hottest = rows[0][1] if rows else 0
    lines.append(
        f"hot/mean ratio: {hottest / mean:.2f}x over {sim.config.nodes} nodes"
    )
    return "\n".join(lines)


def lane_report(sim: Simulator, top: int = 8) -> str:
    """Busiest lanes by executed cycles — the load-balance view."""
    stats = sim.stats
    rows = sorted(
        stats.busy_cycles_by_lane.items(), key=lambda kv: -kv[1]
    )
    lines = ["lane   busy_cycles   share_of_makespan"]
    makespan = stats.final_tick or 1.0
    for lane, busy in rows[:top]:
        lines.append(f"{lane:4}   {busy:11.0f}   {busy / makespan:6.1%}")
    lines.append(
        f"active lanes: {stats.active_lanes()}, "
        f"imbalance {stats.load_imbalance():.2f}x, "
        f"utilization {stats.utilization(sim.config.total_lanes):.1%}"
    )
    return "\n".join(lines)


def event_report(sim: Simulator, top: int = 10) -> str:
    """Event counts by label — which part of the program dominated.

    Requires the per-label histogram tier: build the runtime/simulator
    with ``detailed_stats=True`` (the scalar tier skips the per-event
    label count; see DESIGN.md, "Simulator hot path & stats tiers").
    """
    if not sim.detailed_stats and not sim.stats.events_by_label:
        return (
            "event label histogram unavailable: run with "
            "detailed_stats=True to collect events_by_label"
        )
    rows = sorted(
        sim.stats.events_by_label.items(), key=lambda kv: -kv[1]
    )
    lines = ["event label" + " " * 35 + "count"]
    for label, count in rows[:top]:
        lines.append(f"{label:45} {count:8}")
    return "\n".join(lines)


def occupancy_report(sim: Simulator, top: int = 8) -> str:
    """Per-node injection and DRAM channel occupancy from the flight
    recorder — which channel the run actually queued behind.

    Requires the ``histograms`` recorder tier or above: build the runtime
    with ``record="histograms"`` (or ``record=True``).
    """
    rec = sim.recorder
    if rec is None or not rec.record_channels:
        return (
            "channel occupancy unavailable: run with record='histograms' "
            "(or record=True) to collect channel telemetry"
        )
    makespan = sim.stats.final_tick or 1.0
    lines = []
    for title, by_node, wait_hist in (
        ("injection channel", rec.inj_by_node, rec.inj_wait),
        ("dram channel", rec.dram_by_node, rec.dram_wait),
    ):
        lines.append(
            f"{title} (node, admits, bytes, occupancy_share, "
            "mean_wait, wait_p50, wait_p99, max_wait)"
        )
        rows = sorted(
            by_node.items(), key=lambda kv: -kv[1].occupancy_sum
        )
        if not rows:
            lines.append("  (no traffic)")
        for node, ch in rows[:top]:
            # per-node p50/p99 queue wait (power-of-two bucket bounds) —
            # the number an admission-control threshold is tuned against
            lines.append(
                f"{node:4}   {ch.admits:8}   {ch.bytes:10}   "
                f"{ch.occupancy_sum / makespan:6.1%}   "
                f"{ch.mean_wait:8.1f}   "
                f"{ch.wait_hist.quantile_bound(0.5):8.1f}   "
                f"{ch.wait_hist.quantile_bound(0.99):8.1f}   "
                f"{ch.wait_max:8.1f}"
            )
        lines.append(
            f"queue wait: count={wait_hist.count} "
            f"mean={wait_hist.mean:.1f} "
            f"p50={wait_hist.quantile_bound(0.5):.1f} "
            f"p99={wait_hist.quantile_bound(0.99):.1f} "
            f"max={wait_hist.max:.1f}"
        )
        lines.append("")
    return "\n".join(lines).rstrip()


def full_report(sim: Simulator) -> str:
    """Summary + memory + lane + event (+ occupancy) reports."""
    parts = [
        sim.stats.summary(),
        memory_report(sim),
        lane_report(sim),
        event_report(sim),
    ]
    if sim.recorder is not None and sim.recorder.record_channels:
        parts.append(occupancy_report(sim))
    return "\n\n".join(parts)
