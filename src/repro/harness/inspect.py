"""Post-run machine inspection: where did the time and traffic go?

Text reports over a finished simulation, for the performance-debugging
loop the paper's §5.3 placement experiments imply (find the hot memory
node, change one DRAMmalloc number, re-run).
"""

from __future__ import annotations

from repro.machine.simulator import Simulator


def memory_report(sim: Simulator, top: int = 8) -> str:
    """Per-node DRAM bytes served, hottest first — the Figure 12
    diagnosis view (a skewed column means placement is the bottleneck)."""
    rows = [
        (node, sim.memory.bytes_served(node))
        for node in range(sim.config.nodes)
    ]
    rows.sort(key=lambda r: -r[1])
    total = sum(b for _n, b in rows) or 1
    lines = ["node   bytes_served   share"]
    for node, served in rows[:top]:
        lines.append(f"{node:4}   {served:12}   {served / total:6.1%}")
    mean = total / sim.config.nodes
    hottest = rows[0][1] if rows else 0
    lines.append(
        f"hot/mean ratio: {hottest / mean:.2f}x over {sim.config.nodes} nodes"
    )
    return "\n".join(lines)


def lane_report(sim: Simulator, top: int = 8) -> str:
    """Busiest lanes by executed cycles — the load-balance view."""
    stats = sim.stats
    rows = sorted(
        stats.busy_cycles_by_lane.items(), key=lambda kv: -kv[1]
    )
    lines = ["lane   busy_cycles   share_of_makespan"]
    makespan = stats.final_tick or 1.0
    for lane, busy in rows[:top]:
        lines.append(f"{lane:4}   {busy:11.0f}   {busy / makespan:6.1%}")
    lines.append(
        f"active lanes: {stats.active_lanes()}, "
        f"imbalance {stats.load_imbalance():.2f}x, "
        f"utilization {stats.utilization(sim.config.total_lanes):.1%}"
    )
    return "\n".join(lines)


def event_report(sim: Simulator, top: int = 10) -> str:
    """Event counts by label — which part of the program dominated.

    Requires the per-label histogram tier: build the runtime/simulator
    with ``detailed_stats=True`` (the scalar tier skips the per-event
    label count; see DESIGN.md, "Simulator hot path & stats tiers").
    """
    if not sim.detailed_stats and not sim.stats.events_by_label:
        return (
            "event label histogram unavailable: run with "
            "detailed_stats=True to collect events_by_label"
        )
    rows = sorted(
        sim.stats.events_by_label.items(), key=lambda kv: -kv[1]
    )
    lines = ["event label" + " " * 35 + "count"]
    for label, count in rows[:top]:
        lines.append(f"{label:45} {count:8}")
    return "\n".join(lines)


def full_report(sim: Simulator) -> str:
    """Summary + memory + lane + event reports, concatenated."""
    return "\n\n".join(
        [
            sim.stats.summary(),
            memory_report(sim),
            lane_report(sim),
            event_report(sim),
        ]
    )
