"""Experiment runner: one function per application, one fresh machine per
configuration — the artifact's "run the binary with <nodes>" step.

Every runner builds a scaled-down :func:`repro.machine.bench_machine`
(lanes-per-node reduced 64×, with per-node memory and injection bandwidth
scaled to match; see DESIGN.md) and returns the simulated seconds the
artifact extracts from the logs (``ticks / 2 GHz``).

Every runner also takes a ``record=`` flag (a tier name, ``True``, or a
prebuilt :class:`~repro.observe.FlightRecorder`) that attaches a flight
recorder to the run; the recorder lands in ``RunRecord.extra["recorder"]``
ready for :func:`repro.harness.export.write_chrome_trace` /
``write_perflog_tsv`` or :func:`repro.harness.inspect.occupancy_report`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Sequence

from repro.apps.bfs import BFSApp
from repro.apps.ingestion import IngestionApp
from repro.apps.pagerank import PageRankApp
from repro.apps.partial_match import PartialMatchApp, Pattern
from repro.apps.tform import Record
from repro.apps.triangle import TriangleCountApp
from repro.graph.csr import CSRGraph
from repro.machine.config import MachineConfig, bench_machine
from repro.machine.simulator import QuiescenceStall, SimulationError
from repro.observe import make_recorder
from repro.udweave import UpDownRuntime

#: benchmark machine shape: 2 lanes/node (each simulated node models a
#: 1/1024 slice of a real 2048-lane node; see bench_machine)
BENCH_ACCELS_PER_NODE = 1
BENCH_LANES_PER_ACCEL = 2

#: guardrail for runaway simulations in sweeps
DEFAULT_MAX_EVENTS = 30_000_000

#: Scaled-down graphs are ~2^16x smaller than the paper's, so the
#: paper-default 32KB placement block would put whole arrays (and whole
#: hub neighbor lists) on one node.  512B blocks keep the blocks-per-array
#: and blocks-per-hub-list ratios comparable to full scale (DESIGN.md).
BENCH_BLOCK_SIZE = 512


def bench_config(nodes: int, **overrides) -> MachineConfig:
    """The scaled benchmark machine at a given node count (see DESIGN.md).

    Any :class:`MachineConfig` field can be overridden by keyword —
    notably ``coalescing=True`` (optionally with
    ``coalescing_window_cycles=``) to route remote messages through the
    packet-coalescing fabric, which is bit-exact with the default path.
    """
    return bench_machine(
        nodes=nodes,
        accels_per_node=BENCH_ACCELS_PER_NODE,
        lanes_per_accel=BENCH_LANES_PER_ACCEL,
        **overrides,
    )


@dataclass
class RunRecord:
    """One (app, config) execution."""

    nodes: int
    seconds: float
    metric: float  # app-specific figure of merit (GUPS, GTEPS, recs/s, ...)
    extra: Dict[str, Any] = field(default_factory=dict)


def _bench_runtime(
    nodes: int,
    detailed_stats: bool,
    record,
    machine_overrides,
    shards: int = 1,
    parallel: bool = False,
    faults=None,
    reliable=False,
    watchdog_cycles: Optional[float] = None,
) -> UpDownRuntime:
    """A fresh recorded-or-not benchmark runtime (shared by all runners)."""
    return UpDownRuntime(
        bench_config(nodes, **machine_overrides),
        detailed_stats=detailed_stats,
        recorder=make_recorder(record),
        shards=shards,
        parallel=parallel,
        faults=faults,
        reliable=reliable,
        watchdog_cycles=watchdog_cycles,
    )


def _attach_recorder(extra: Dict[str, Any], rt: UpDownRuntime) -> Dict[str, Any]:
    if rt.recorder is not None:
        extra["recorder"] = rt.recorder
    # forked-worker runs expose the coordinator's transport counters
    # (boundary bytes, ring overflows, barrier wait, window histogram);
    # they live outside SimStats so fingerprints stay parallel-invariant
    metrics = rt.sim.parallel_metrics()
    if metrics is not None:
        extra["parallel_metrics"] = metrics
    return extra


def _check_quiescence(rt: UpDownRuntime, require: bool) -> None:
    """Fail loudly when a run ends stalled instead of quiesced.

    An empty event heap with live threads still pending is the silent
    shape of a lost message or credit; harness runs treat it as an error
    by default rather than reporting a bogus makespan.
    """
    stats = rt.sim.stats
    if require and not stats.quiesced:
        raise QuiescenceStall(
            f"run ended without quiescing: {stats.pending_threads} "
            f"thread(s) still waiting for events (the silent shape of a "
            f"lost message or credit); pass require_quiescence=False to "
            f"accept a partial run",
            rt.sim.stall_dump(),
        )


def run_pagerank(
    graph: CSRGraph,
    nodes: int,
    iterations: int = 1,
    max_degree: int = 64,
    mem_nodes: Optional[int] = None,
    max_events: int = DEFAULT_MAX_EVENTS,
    detailed_stats: bool = False,
    record=None,
    shards: int = 1,
    parallel: bool = False,
    faults=None,
    reliable=False,
    watchdog_cycles: Optional[float] = None,
    require_quiescence: bool = True,
    **machine_overrides,
) -> RunRecord:
    """One PageRank run on a fresh scaled machine; returns its RunRecord."""
    rt = _bench_runtime(
        nodes, detailed_stats, record, machine_overrides, shards, parallel,
        faults, reliable, watchdog_cycles,
    )
    app = PageRankApp(
        rt, graph, max_degree=max_degree, mem_nodes=mem_nodes,
        block_size=BENCH_BLOCK_SIZE,
    )
    try:
        res = app.run(iterations=iterations, max_events=max_events)
        _check_quiescence(rt, require_quiescence)
    finally:
        rt.shutdown()
    return RunRecord(
        nodes=nodes,
        seconds=res.elapsed_seconds,
        metric=res.giga_updates_per_second,
        extra=_attach_recorder(
            {"edges": res.edges_per_iteration, "stats": res.stats}, rt
        ),
    )


def run_bfs(
    graph: CSRGraph,
    nodes: int,
    root: int = 0,
    max_degree: int = 64,
    mem_nodes: Optional[int] = None,
    frontier_mem_nodes: Optional[int] = None,
    max_events: int = DEFAULT_MAX_EVENTS,
    detailed_stats: bool = False,
    record=None,
    shards: int = 1,
    parallel: bool = False,
    faults=None,
    reliable=False,
    watchdog_cycles: Optional[float] = None,
    require_quiescence: bool = True,
    **machine_overrides,
) -> RunRecord:
    """One BFS run on a fresh scaled machine; returns its RunRecord."""
    rt = _bench_runtime(
        nodes, detailed_stats, record, machine_overrides, shards, parallel,
        faults, reliable, watchdog_cycles,
    )
    app = BFSApp(
        rt,
        graph,
        max_degree=max_degree,
        mem_nodes=mem_nodes,
        frontier_mem_nodes=frontier_mem_nodes,
        block_size=BENCH_BLOCK_SIZE,
    )
    try:
        res = app.run(root=root, max_events=max_events)
        _check_quiescence(rt, require_quiescence)
    finally:
        rt.shutdown()
    return RunRecord(
        nodes=nodes,
        seconds=res.elapsed_seconds,
        metric=res.giga_teps,
        extra=_attach_recorder(
            {
                "rounds": res.rounds,
                "traversed": res.traversed_edges,
                "stats": res.stats,
            },
            rt,
        ),
    )


def run_triangle_count(
    graph: CSRGraph,
    nodes: int,
    pbmw: bool = False,
    mem_nodes: Optional[int] = None,
    max_events: int = DEFAULT_MAX_EVENTS,
    detailed_stats: bool = False,
    record=None,
    shards: int = 1,
    parallel: bool = False,
    faults=None,
    reliable=False,
    watchdog_cycles: Optional[float] = None,
    require_quiescence: bool = True,
    **machine_overrides,
) -> RunRecord:
    """One TC run on a fresh scaled machine; returns its RunRecord."""
    rt = _bench_runtime(
        nodes, detailed_stats, record, machine_overrides, shards, parallel,
        faults, reliable, watchdog_cycles,
    )
    app = TriangleCountApp(
        rt, graph, pbmw=pbmw, mem_nodes=mem_nodes, block_size=BENCH_BLOCK_SIZE
    )
    try:
        res = app.run(max_events=max_events)
        _check_quiescence(rt, require_quiescence)
    finally:
        rt.shutdown()
    return RunRecord(
        nodes=nodes,
        seconds=res.elapsed_seconds,
        metric=res.triangles / res.elapsed_seconds if res.elapsed_seconds else 0,
        extra=_attach_recorder(
            {"triangles": res.triangles, "stats": res.stats}, rt
        ),
    )


def run_ingestion(
    records: Sequence[Record],
    nodes: int,
    block_words: int = 64,
    max_events: int = DEFAULT_MAX_EVENTS,
    detailed_stats: bool = False,
    record=None,
    shards: int = 1,
    parallel: bool = False,
    faults=None,
    reliable=False,
    watchdog_cycles: Optional[float] = None,
    require_quiescence: bool = True,
    **machine_overrides,
) -> RunRecord:
    """One ingestion run on a fresh scaled machine; returns its RunRecord."""
    rt = _bench_runtime(
        nodes, detailed_stats, record, machine_overrides, shards, parallel,
        faults, reliable, watchdog_cycles,
    )
    app = IngestionApp(rt, records, block_words=block_words)
    try:
        res = app.run(max_events=max_events)
        _check_quiescence(rt, require_quiescence)
    finally:
        rt.shutdown()
    return RunRecord(
        nodes=nodes,
        seconds=res.elapsed_seconds,
        metric=res.records_per_second,
        extra=_attach_recorder({"records": res.records, "stats": res.stats}, rt),
    )


def run_partial_match(
    records: Sequence[Record],
    patterns: Sequence[Pattern],
    nodes: int,
    gap_cycles: float = 2000.0,
    max_events: int = DEFAULT_MAX_EVENTS,
    detailed_stats: bool = False,
    record=None,
    shards: int = 1,
    parallel: bool = False,
    faults=None,
    reliable=False,
    watchdog_cycles: Optional[float] = None,
    require_quiescence: bool = True,
    **machine_overrides,
) -> RunRecord:
    """One partial-match stream on a fresh scaled machine (latency metric)."""
    rt = _bench_runtime(
        nodes, detailed_stats, record, machine_overrides, shards, parallel,
        faults, reliable, watchdog_cycles,
    )
    app = PartialMatchApp(rt, patterns)
    try:
        res = app.run_stream(
            records, gap_cycles=gap_cycles, max_events=max_events
        )
        _check_quiescence(rt, require_quiescence)
    finally:
        rt.shutdown()
    return RunRecord(
        nodes=nodes,
        seconds=res.mean_latency_seconds,
        metric=1.0 / res.mean_latency_seconds if res.mean_latency_seconds else 0,
        extra=_attach_recorder({"alerts": len(res.alerts), "stats": res.stats}, rt),
    )


def run_service(
    requests,
    nodes: int,
    admission=None,
    slo=None,
    patterns=None,
    step_cycles: float = 4_000.0,
    drain_grace_cycles: float = 400_000.0,
    max_events: int = DEFAULT_MAX_EVENTS,
    detailed_stats: bool = False,
    record="histograms",
    shards: int = 1,
    parallel: bool = False,
    faults=None,
    reliable=False,
    watchdog_cycles: Optional[float] = None,
    **machine_overrides,
) -> RunRecord:
    """One always-on service run on a fresh scaled machine.

    ``requests`` is the materialized open-loop stream (see
    :meth:`repro.service.ServiceWorkload.requests`); ``admission`` and
    ``slo`` are the optional :class:`~repro.service.AdmissionControl`
    and :class:`~repro.service.SLOSpec`.  Records per-request latency
    histograms by default (``record="histograms"``).

    There is no quiescence requirement here: a service run ends when the
    drain grace expires, and unanswered requests are *accounted* (the
    ``lost`` status the SLO verdict checks) rather than waited for — a
    lazily-cancelled retransmit timer left past the horizon is normal.

    ``RunRecord.seconds`` is the simulated wall time; ``metric`` is
    completed requests per simulated second.  The full
    :class:`~repro.service.ServiceResult` (verdict included when ``slo``
    is given) lands in ``extra["service"]``.
    """
    from repro.service import DEFAULT_PATTERNS, ServiceApp, ServiceHarness

    if parallel:
        raise SimulationError(
            "run_service needs bounded stepping (run(until=)), which "
            "forked workers (parallel=True) cannot do; use in-process "
            "shards (parallel=False) instead"
        )
    rt = _bench_runtime(
        nodes, detailed_stats, record, machine_overrides, shards, parallel,
        faults, reliable, watchdog_cycles,
    )
    app = ServiceApp(
        rt, patterns=patterns if patterns is not None else DEFAULT_PATTERNS
    )
    harness = ServiceHarness(
        app,
        admission=admission,
        step_cycles=step_cycles,
        drain_grace_cycles=drain_grace_cycles,
    )
    try:
        res = harness.run(requests, slo=slo, max_events=max_events)
    finally:
        rt.shutdown()
    completed = res.status_counts["ok"] + res.status_counts["deadline_miss"]
    return RunRecord(
        nodes=nodes,
        seconds=res.elapsed_seconds,
        metric=completed / res.elapsed_seconds if res.elapsed_seconds else 0,
        extra=_attach_recorder(
            {
                "service": res,
                "stats": res.stats,
                "verdict": res.verdict,
            },
            rt,
        ),
    )
