"""Graph generators: RMAT, Erdős–Rényi, Forest Fire (paper §5.2 inputs).

The RMAT generator follows the artifact appendix: parameters
``a=0.57, b=0.19, c=0.19`` (d = 0.05) with edge factor 16 — the Graph500 /
Graph Challenge standard.  Generation is fully vectorized (one NumPy pass
per scale bit) per the HPC-Python guides.
"""

from __future__ import annotations

import numpy as np

from .csr import CSRGraph, GraphError

#: Artifact appendix RMAT parameters.
RMAT_A, RMAT_B, RMAT_C = 0.57, 0.19, 0.19
DEFAULT_EDGE_FACTOR = 16


def rmat_edges(
    scale: int,
    edge_factor: int = DEFAULT_EDGE_FACTOR,
    a: float = RMAT_A,
    b: float = RMAT_B,
    c: float = RMAT_C,
    seed: int = 0,
) -> np.ndarray:
    """Raw RMAT edge list: ``2**scale`` vertices, ``edge_factor * 2**scale``
    edges (duplicates and self-loops included, as a real generator emits)."""
    if scale < 1:
        raise GraphError("RMAT scale must be >= 1")
    d = 1.0 - a - b - c
    if d < -1e-9 or min(a, b, c) < 0:
        raise GraphError("RMAT probabilities must be non-negative and sum <= 1")
    n_edges = edge_factor << scale
    rng = np.random.default_rng(seed)
    src = np.zeros(n_edges, dtype=np.int64)
    dst = np.zeros(n_edges, dtype=np.int64)
    for bit in range(scale):
        r = rng.random(n_edges)
        # quadrant probabilities: a (0,0), b (0,1), c (1,0), d (1,1)
        go_right = ((r >= a) & (r < a + b)) | (r >= a + b + c)
        go_down = r >= a + b
        src = (src << 1) | go_down
        dst = (dst << 1) | go_right
    return np.column_stack([src, dst])


def rmat(
    scale: int,
    edge_factor: int = DEFAULT_EDGE_FACTOR,
    seed: int = 0,
    symmetrize: bool = True,
    a: float = RMAT_A,
    b: float = RMAT_B,
    c: float = RMAT_C,
) -> CSRGraph:
    """An RMAT graph, deduplicated and (by default) symmetrized."""
    edges = rmat_edges(scale, edge_factor, a, b, c, seed)
    return CSRGraph.from_edges(edges, n=1 << scale, symmetrize=symmetrize)


def erdos_renyi(
    n: int, avg_degree: float = 16.0, seed: int = 0, symmetrize: bool = True
) -> CSRGraph:
    """G(n, m)-style Erdős–Rényi graph with ``n * avg_degree / 2``
    undirected edges (the paper's Scale-28 ER analog, scaled down)."""
    if n < 2:
        raise GraphError("ER graph needs at least two vertices")
    m = int(n * avg_degree / 2)
    rng = np.random.default_rng(seed)
    src = rng.integers(0, n, size=m, dtype=np.int64)
    dst = rng.integers(0, n, size=m, dtype=np.int64)
    return CSRGraph.from_edges(
        np.column_stack([src, dst]), n=n, symmetrize=symmetrize
    )


def forest_fire(
    n: int, forward_prob: float = 0.35, seed: int = 0
) -> CSRGraph:
    """Forest Fire model (Leskovec et al.): new vertices "burn" through
    the existing graph, producing heavy-tailed degrees and communities.
    Sequential by nature; use moderate ``n``."""
    if n < 2:
        raise GraphError("Forest Fire graph needs at least two vertices")
    if not (0.0 <= forward_prob < 1.0):
        raise GraphError("forward probability must be in [0, 1)")
    rng = np.random.default_rng(seed)
    adj: list[set[int]] = [set() for _ in range(n)]
    adj[1].add(0)
    adj[0].add(1)
    for v in range(2, n):
        ambassador = int(rng.integers(0, v))
        burned = {ambassador}
        frontier = [ambassador]
        # geometric "fire spread": expected burn count 1/(1-p) per hop
        while frontier:
            w = frontier.pop()
            links = [u for u in adj[w] if u not in burned]
            if not links:
                continue
            k = rng.geometric(1.0 - forward_prob) - 1
            if k <= 0:
                continue
            rng.shuffle(links)
            for u in links[:k]:
                burned.add(u)
                frontier.append(u)
        for u in burned:
            adj[v].add(u)
            adj[u].add(v)
    edges = [(v, u) for v in range(n) for u in adj[v]]
    return CSRGraph.from_edges(edges, n=n, symmetrize=False)


def path_graph(n: int) -> CSRGraph:
    """A simple undirected path — deterministic corner-case fodder."""
    edges = [(i, i + 1) for i in range(n - 1)]
    return CSRGraph.from_edges(edges, n=n, symmetrize=True)


def complete_graph(n: int) -> CSRGraph:
    """K_n: every vertex adjacent to every other (n(n-1) directed edges)."""
    edges = [(i, j) for i in range(n) for j in range(n) if i != j]
    return CSRGraph.from_edges(edges, n=n)


def star_graph(n: int) -> CSRGraph:
    """One hub, ``n-1`` spokes — maximum skew, exercises vertex splitting."""
    edges = [(0, i) for i in range(1, n)]
    return CSRGraph.from_edges(edges, n=n, symmetrize=True)


def grid_graph(rows: int, cols: int) -> CSRGraph:
    """A 2-D mesh — the regular, zero-skew counterpoint to RMAT (useful
    for isolating skew effects in binding experiments)."""
    if rows < 1 or cols < 1:
        raise GraphError("grid needs positive dimensions")
    edges = []
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                edges.append((v, v + 1))
            if r + 1 < rows:
                edges.append((v, v + cols))
    return CSRGraph.from_edges(edges, n=rows * cols, symmetrize=True)


def watts_strogatz(
    n: int, k: int = 4, rewire_prob: float = 0.1, seed: int = 0
) -> CSRGraph:
    """Small-world ring lattice with rewiring — low diameter, near-uniform
    degrees; stresses BFS round counts differently than RMAT."""
    if n < 3 or k < 2 or k % 2:
        raise GraphError("watts-strogatz needs n >= 3 and even k >= 2")
    if not (0.0 <= rewire_prob <= 1.0):
        raise GraphError("rewire probability must be in [0, 1]")
    rng = np.random.default_rng(seed)
    edges = set()
    for v in range(n):
        for j in range(1, k // 2 + 1):
            u = (v + j) % n
            if rng.random() < rewire_prob:
                w = int(rng.integers(0, n))
                if w != v and (v, w) not in edges and (w, v) not in edges:
                    u = w
            edges.add((v, u))
    return CSRGraph.from_edges(sorted(edges), n=n, symmetrize=True)
