"""Vertex splitting: the ``split_and_shuffle`` preprocessing transform.

High-degree vertices serialize push-based algorithms (one map task walks
the whole neighbor list).  The artifact's ``split_and_shuffle`` tool caps
the maximum degree by splitting each vertex into sub-vertices — "transforms
the graph to a maximum degree of 1024, yet yields the correct result for
the original graph" (§5.2.1; PR uses max degree 512, BFS 4096).

A vertex ``v`` of degree ``d`` becomes ``ceil(d / max_degree)``
sub-vertices, each owning a contiguous slice of ``v``'s neighbor list.
Neighbor entries remain *original* vertex IDs: sources are split (task
parallelism), destinations are not (reductions stay keyed by real
vertices).  Each sub-vertex also records the original vertex and its
original total degree so PageRank can divide contributions correctly.

The "shuffle" half permutes sub-vertex order: under the default Block
binding, contiguous key blocks go to single lanes, so shuffling spreads a
hub's sub-vertices across lanes — load balance for skewed graphs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from .csr import CSRGraph, GraphError


@dataclass
class SplitGraph:
    """A degree-capped graph plus the bookkeeping to undo the split."""

    #: the split topology: sub-vertex sources, original-ID destinations
    graph: CSRGraph
    #: sub-vertex -> original vertex ID
    rep: np.ndarray
    #: original vertex -> its total degree in the input graph
    orig_degree: np.ndarray
    #: CSR over originals: sub-vertices of original ``v`` are
    #: ``sub_ids[subs_offsets[v] : subs_offsets[v+1]]``
    subs_offsets: np.ndarray
    sub_ids: np.ndarray
    #: the split parameter used
    max_degree: int

    @property
    def n_orig(self) -> int:
        return len(self.orig_degree)

    @property
    def n_sub(self) -> int:
        return self.graph.n

    def subs_of(self, v: int) -> np.ndarray:
        return self.sub_ids[self.subs_offsets[v] : self.subs_offsets[v + 1]]

    def stats(self) -> Dict[str, float]:
        """The ``-s`` statistics of the artifact tool."""
        degs = self.graph.degrees
        return {
            "n_orig": self.n_orig,
            "n_sub": self.n_sub,
            "m": self.graph.m,
            "max_degree_before": int(self.orig_degree.max()) if self.n_orig else 0,
            "max_degree_after": int(degs.max()) if self.n_sub else 0,
            "split_vertices": int(
                np.sum(np.diff(self.subs_offsets) > 1)
            ),
        }


def split_and_shuffle(
    graph: CSRGraph,
    max_degree: int,
    seed: Optional[int] = 0,
    shuffle: bool = True,
) -> SplitGraph:
    """Apply the degree-cap split; ``shuffle=False`` keeps original order.

    ``seed=None`` with ``shuffle=True`` is rejected — reproducibility is a
    feature, not an accident.
    """
    if max_degree < 1:
        raise GraphError("max degree must be >= 1")
    if shuffle and seed is None:
        raise GraphError("shuffling requires a seed")
    n = graph.n
    degrees = graph.degrees
    n_subs_per = np.maximum(1, -(-degrees // max_degree))  # ceil, min 1
    n_sub = int(n_subs_per.sum())

    # Build per-sub metadata in original order first.
    rep = np.repeat(np.arange(n, dtype=np.int64), n_subs_per)
    sub_index_within = np.concatenate(
        [np.arange(k, dtype=np.int64) for k in n_subs_per]
    ) if n else np.zeros(0, np.int64)
    # sub s owns slice [lo, hi) of rep(s)'s neighbor run
    slice_lo = sub_index_within * max_degree
    slice_hi = np.minimum(slice_lo + max_degree, degrees[rep])
    sub_degrees = np.maximum(0, slice_hi - slice_lo)

    order = np.arange(n_sub, dtype=np.int64)
    if shuffle and n_sub > 1:
        rng = np.random.default_rng(seed)
        rng.shuffle(order)

    # Assemble the split CSR in shuffled order.
    new_degrees = sub_degrees[order]
    offsets = np.zeros(n_sub + 1, dtype=np.int64)
    np.cumsum(new_degrees, out=offsets[1:])
    neighbors = np.empty(int(new_degrees.sum()), dtype=np.int64)
    for new_id, old_sub in enumerate(order):
        v = rep[old_sub]
        lo = graph.offsets[v] + slice_lo[old_sub]
        hi = graph.offsets[v] + slice_hi[old_sub]
        neighbors[offsets[new_id] : offsets[new_id + 1]] = graph.neighbors[lo:hi]

    new_rep = rep[order]
    # CSR over originals -> sub IDs (in the shuffled numbering).
    sort_by_rep = np.argsort(new_rep, kind="stable")
    sub_ids = sort_by_rep.astype(np.int64)
    counts = np.bincount(new_rep, minlength=n)
    subs_offsets = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=subs_offsets[1:])

    split = SplitGraph(
        graph=CSRGraph(offsets, neighbors),
        rep=new_rep,
        orig_degree=degrees.copy(),
        subs_offsets=subs_offsets,
        sub_ids=sub_ids,
        max_degree=max_degree,
    )
    assert split.graph.max_degree <= max_degree
    return split


def validate_split(split: SplitGraph, original: CSRGraph) -> None:
    """Check the split partitions the original edge multiset (test helper)."""
    got: Dict[tuple, int] = {}
    for s in range(split.n_sub):
        v = int(split.rep[s])
        for u in split.graph.out_neighbors(s):
            got[(v, int(u))] = got.get((v, int(u)), 0) + 1
    want: Dict[tuple, int] = {}
    for v, u in original.edges():
        want[(v, u)] = want.get((v, u), 0) + 1
    if got != want:
        raise GraphError("split does not preserve the edge multiset")
