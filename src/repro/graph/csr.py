"""CSR graphs: the vertex-array + neighbor-list representation.

All of the paper's applications consume graphs as two arrays (§4.1.1): a
*vertex array* (per-vertex metadata including a pointer into the neighbor
list and a degree) and a *neighbor list* (the concatenated destination
vertices).  :class:`CSRGraph` is the host-side form; the apps copy it into
``DRAMmalloc`` regions for simulation.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Tuple

import numpy as np


class GraphError(ValueError):
    """Raised for malformed graph construction inputs."""


class CSRGraph:
    """An immutable directed graph in compressed-sparse-row form."""

    def __init__(self, offsets: np.ndarray, neighbors: np.ndarray) -> None:
        offsets = np.asarray(offsets, dtype=np.int64)
        neighbors = np.asarray(neighbors, dtype=np.int64)
        if offsets.ndim != 1 or len(offsets) < 1:
            raise GraphError("offsets must be a 1-D array with >= 1 entry")
        if offsets[0] != 0 or offsets[-1] != len(neighbors):
            raise GraphError("offsets must start at 0 and end at |E|")
        if np.any(np.diff(offsets) < 0):
            raise GraphError("offsets must be non-decreasing")
        n = len(offsets) - 1
        if len(neighbors) and (neighbors.min() < 0 or neighbors.max() >= n):
            raise GraphError("neighbor IDs out of range")
        self.offsets = offsets
        self.neighbors = neighbors

    # -- construction -----------------------------------------------------

    @classmethod
    def from_edges(
        cls,
        edges: Iterable[Tuple[int, int]],
        n: int | None = None,
        symmetrize: bool = False,
        dedup: bool = True,
        drop_self_loops: bool = True,
    ) -> "CSRGraph":
        """Build from an edge list (the preprocessing pipeline's converter).

        ``symmetrize`` inserts the reverse of every edge (the artifact's
        default for undirected inputs); ``dedup`` removes duplicates after
        sorting by source then destination (what the ``tsv`` tool does).
        """
        arr = np.asarray(list(edges), dtype=np.int64)
        if arr.size == 0:
            arr = arr.reshape(0, 2)
        if arr.ndim != 2 or arr.shape[1] != 2:
            raise GraphError("edges must be (src, dst) pairs")
        if symmetrize and len(arr):
            arr = np.concatenate([arr, arr[:, ::-1]])
        if drop_self_loops and len(arr):
            arr = arr[arr[:, 0] != arr[:, 1]]
        if n is None:
            n = int(arr.max()) + 1 if len(arr) else 0
        elif len(arr) and arr.max() >= n:
            raise GraphError(f"edge endpoint exceeds n={n}")
        if len(arr):
            order = np.lexsort((arr[:, 1], arr[:, 0]))
            arr = arr[order]
            if dedup:
                keep = np.ones(len(arr), dtype=bool)
                keep[1:] = np.any(arr[1:] != arr[:-1], axis=1)
                arr = arr[keep]
        degrees = np.bincount(arr[:, 0], minlength=n) if len(arr) else np.zeros(
            n, dtype=np.int64
        )
        offsets = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(degrees, out=offsets[1:])
        return cls(offsets, arr[:, 1].copy() if len(arr) else np.zeros(0, np.int64))

    # -- shape ----------------------------------------------------------------

    @property
    def n(self) -> int:
        """Number of vertices."""
        return len(self.offsets) - 1

    @property
    def m(self) -> int:
        """Number of (directed) edges."""
        return len(self.neighbors)

    def degree(self, v: int) -> int:
        return int(self.offsets[v + 1] - self.offsets[v])

    @property
    def degrees(self) -> np.ndarray:
        return np.diff(self.offsets)

    @property
    def max_degree(self) -> int:
        return int(self.degrees.max()) if self.n else 0

    def out_neighbors(self, v: int) -> np.ndarray:
        return self.neighbors[self.offsets[v] : self.offsets[v + 1]]

    def edges(self) -> Iterator[Tuple[int, int]]:
        for v in range(self.n):
            for u in self.out_neighbors(v):
                yield v, int(u)

    # -- transforms --------------------------------------------------------------

    def reversed(self) -> "CSRGraph":
        """The transpose graph (in-edges become out-edges)."""
        pairs = np.column_stack(
            [
                self.neighbors,
                np.repeat(np.arange(self.n, dtype=np.int64), self.degrees),
            ]
        )
        return CSRGraph.from_edges(
            pairs, n=self.n, dedup=False, drop_self_loops=False
        )

    def is_symmetric(self) -> bool:
        """True when every edge's reverse is present."""
        fwd = set(map(tuple, zip(*np.nonzero(self._adjacency()))))
        return all((b, a) in fwd for a, b in fwd)

    def _adjacency(self) -> np.ndarray:
        adj = np.zeros((self.n, self.n), dtype=bool)
        src = np.repeat(np.arange(self.n), self.degrees)
        adj[src, self.neighbors] = True
        return adj

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CSRGraph n={self.n} m={self.m} dmax={self.max_degree}>"
