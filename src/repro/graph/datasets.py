"""Named graph datasets: synthetic stand-ins for the paper's inputs.

The paper evaluates on SNAP graphs (soc-LiveJournal, com-orkut, Twitter,
friendster), Graph-Challenge RMAT graphs (scale 25/28), an Erdős–Rényi
scale-28 graph, and a Forest Fire scale-28 graph.  Without network access
(and at functional-simulation speed) we generate scaled-down graphs whose
*degree skew and density* match each original — the properties the
strong-scaling experiments actually exercise (see DESIGN.md substitution
table).  Each entry records the original's shape for EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from .csr import CSRGraph
from .generators import erdos_renyi, forest_fire, rmat


@dataclass(frozen=True)
class DatasetSpec:
    name: str
    build: Callable[[], CSRGraph]
    stands_in_for: str
    notes: str


def _registry() -> Dict[str, DatasetSpec]:
    specs = [
        DatasetSpec(
            "rmat-s12",
            lambda: rmat(12, edge_factor=16, seed=48),
            "RMAT scale-28, ef 16 (a=0.57 b=0.19 c=0.19)",
            "same generator and parameters, scale reduced 28 -> 12",
        ),
        DatasetSpec(
            "rmat-s10",
            lambda: rmat(10, edge_factor=16, seed=48),
            "RMAT scale-25 (Graph Challenge)",
            "same generator, scale reduced 25 -> 10",
        ),
        DatasetSpec(
            "erdos-renyi",
            lambda: erdos_renyi(1 << 12, avg_degree=16.0, seed=11),
            "Erdős–Rényi scale-28",
            "uniform degrees: the paper's no-skew reference point",
        ),
        DatasetSpec(
            "forest-fire",
            lambda: forest_fire(1 << 12, forward_prob=0.4, seed=5),
            "Forest Fire scale-28",
            "heavy-tailed, community-structured",
        ),
        DatasetSpec(
            "soc-livej",
            lambda: rmat(10, edge_factor=14, seed=101),
            "SNAP soc-LiveJournal1 (4.8M v, 69M e)",
            "matched edge factor ~14; small size reproduces its early "
            "scaling saturation in BFS (Table 9)",
        ),
        DatasetSpec(
            "com-orkut",
            lambda: rmat(10, edge_factor=32, seed=102),
            "SNAP com-orkut (3.1M v, 117M e)",
            "denser (ef ~38 in the original)",
        ),
        DatasetSpec(
            "twitter",
            lambda: rmat(11, edge_factor=18, seed=103, a=0.62, b=0.17, c=0.17),
            "Twitter follower graph (41M v)",
            "higher RMAT 'a' parameter for extreme hub skew",
        ),
        DatasetSpec(
            "friendster",
            lambda: rmat(12, edge_factor=14, seed=104),
            "SNAP com-friendster (65M v, 1.8B e)",
            "largest stand-in; drives the TC 1024-node sweep",
        ),
    ]
    return {s.name: s for s in specs}


_SPECS = _registry()
_CACHE: Dict[str, CSRGraph] = {}


def dataset_names() -> List[str]:
    """Sorted names of the available dataset stand-ins."""
    return sorted(_SPECS)


def dataset_spec(name: str) -> DatasetSpec:
    """The spec (builder + provenance notes) for a named dataset."""
    try:
        return _SPECS[name]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; available: {', '.join(dataset_names())}"
        ) from None


def load_dataset(name: str) -> CSRGraph:
    """Build (and memoize) a named dataset graph."""
    if name not in _CACHE:
        _CACHE[name] = dataset_spec(name).build()
    return _CACHE[name]
