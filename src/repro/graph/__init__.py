"""Host-side graph substrate: CSR structures, generators, preprocessing."""

from .csr import CSRGraph, GraphError
from .datasets import dataset_names, dataset_spec, load_dataset
from .generators import (
    complete_graph,
    erdos_renyi,
    forest_fire,
    grid_graph,
    path_graph,
    rmat,
    rmat_edges,
    star_graph,
    watts_strogatz,
)
from .io import (
    VERTEX_STRIDE_WORDS,
    csr_from_records,
    load_graph,
    save_graph,
    vertex_records,
)
from .splitting import SplitGraph, split_and_shuffle, validate_split

__all__ = [
    "CSRGraph",
    "GraphError",
    "rmat",
    "rmat_edges",
    "erdos_renyi",
    "forest_fire",
    "path_graph",
    "complete_graph",
    "star_graph",
    "grid_graph",
    "watts_strogatz",
    "SplitGraph",
    "split_and_shuffle",
    "validate_split",
    "save_graph",
    "load_graph",
    "vertex_records",
    "csr_from_records",
    "VERTEX_STRIDE_WORDS",
    "load_dataset",
    "dataset_names",
    "dataset_spec",
]
