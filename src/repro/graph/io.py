"""Binary graph I/O mimicking the artifact's ``*_gv.bin`` / ``*_nl.bin``.

The preprocessing tools emit two binaries: a vertex array (``_gv.bin``,
fixed-stride records) and a neighbor list (``_nl.bin``, one int64 per
destination).  We reproduce that format so benchmarks can be driven from
files exactly like the artifact:

vertex record (4 little-endian int64 words, matching the simulated
``Vertex`` struct of Listing 3)::

    word 0: original vertex ID (the "rep" for split graphs)
    word 1: degree (of this vertex / sub-vertex)
    word 2: neighbor-list offset (word index into the _nl file)
    word 3: original total degree (== degree for unsplit graphs)
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Tuple, Union

import numpy as np

from .csr import CSRGraph
from .splitting import SplitGraph

VERTEX_STRIDE_WORDS = 4

PathLike = Union[str, Path]


def vertex_records(graph: CSRGraph, split: SplitGraph | None = None) -> np.ndarray:
    """The ``(n, 4)`` int64 vertex-record array for a graph."""
    if split is not None:
        g = split.graph
        rep = split.rep
        orig_degree = split.orig_degree[rep]
    else:
        g = graph
        rep = np.arange(g.n, dtype=np.int64)
        orig_degree = g.degrees
    rec = np.empty((g.n, VERTEX_STRIDE_WORDS), dtype=np.int64)
    rec[:, 0] = rep
    rec[:, 1] = g.degrees
    rec[:, 2] = g.offsets[:-1]
    rec[:, 3] = orig_degree
    return rec


def save_graph(
    prefix: PathLike, graph: CSRGraph, split: SplitGraph | None = None
) -> Tuple[Path, Path]:
    """Write ``<prefix>_gv.bin`` and ``<prefix>_nl.bin`` (plus a small
    JSON sidecar with the counts); returns the two binary paths."""
    prefix = Path(prefix)
    g = split.graph if split is not None else graph
    gv = prefix.with_name(prefix.name + "_gv.bin")
    nl = prefix.with_name(prefix.name + "_nl.bin")
    vertex_records(graph, split).tofile(gv)
    g.neighbors.astype(np.int64).tofile(nl)
    meta = {
        "n": int(g.n),
        "m": int(g.m),
        "n_orig": int(split.n_orig) if split is not None else int(graph.n),
        "max_degree": int(split.max_degree) if split is not None else None,
    }
    prefix.with_name(prefix.name + "_meta.json").write_text(json.dumps(meta))
    return gv, nl


def load_graph(prefix: PathLike) -> Tuple[np.ndarray, np.ndarray, dict]:
    """Read the binaries back: ``(vertex_records, neighbor_list, meta)``."""
    prefix = Path(prefix)
    gv = prefix.with_name(prefix.name + "_gv.bin")
    nl = prefix.with_name(prefix.name + "_nl.bin")
    meta = json.loads(prefix.with_name(prefix.name + "_meta.json").read_text())
    records = np.fromfile(gv, dtype=np.int64).reshape(-1, VERTEX_STRIDE_WORDS)
    neighbors = np.fromfile(nl, dtype=np.int64)
    if len(records) != meta["n"]:
        raise OSError(f"{gv}: record count disagrees with sidecar")
    if len(neighbors) != meta["m"]:
        raise OSError(f"{nl}: neighbor count disagrees with sidecar")
    return records, neighbors, meta


def csr_from_records(
    records: np.ndarray, neighbors: np.ndarray
) -> CSRGraph:
    """Rebuild a :class:`CSRGraph` from loaded binary records."""
    degrees = records[:, 1]
    offsets = np.zeros(len(records) + 1, dtype=np.int64)
    np.cumsum(degrees, out=offsets[1:])
    return CSRGraph(offsets, neighbors)
