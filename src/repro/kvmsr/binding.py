"""Computation binding: mapping KVMSR tasks onto lanes (paper §2.3).

KVMSR decouples *what* runs (kv_map / kv_reduce tasks per key) from *where*
it runs.  The predefined schemes are:

* **Block** — lanes get equal, contiguous portions of the key space
  (default for ``kv_map``);
* **Hash** — each key is hashed to a lane (default for ``kv_reduce``);
* **PBMW** — partial-block + master-worker: lanes get an initial block and
  ask the master for more when they run dry (robust to work skew, used by
  one Triangle Counting variant);
* **KeyToLane** — a user function computes the lane per key directly, the
  paper's ``LaneID = (hash(key) % NRLanes) + 1stLane`` idiom (BFS uses this
  to put one kv_map task on each accelerator).

All hashing uses a seeded splitmix64 so simulations are reproducible across
Python processes (Python's built-in ``hash`` is salted).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.machine.config import MachineConfig

_MASK64 = (1 << 64) - 1


def splitmix64(x: int) -> int:
    """Deterministic 64-bit mixer (Steele et al.); domain is any int."""
    x = (x + 0x9E3779B97F4A7C15) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


def stable_hash(key) -> int:
    """Deterministic hash for ints, strings, and flat tuples of them."""
    if isinstance(key, (int,)):
        return splitmix64(key)
    if isinstance(key, str):
        h = 0xCBF29CE484222325
        for ch in key.encode():
            h = ((h ^ ch) * 0x100000001B3) & _MASK64
        return splitmix64(h)
    if isinstance(key, tuple):
        h = 0x9E3779B97F4A7C15
        for part in key:
            h = splitmix64(h ^ stable_hash(part))
        return h
    raise TypeError(f"unhashable KVMSR key type: {type(key).__name__}")


class LaneSet:
    """An ordered set of lanes targeted by one KVMSR invocation.

    Paper §2.3: "Each KVMSR invocation targets a set of lanes."
    """

    def __init__(self, lanes) -> None:
        self.lanes: List[int] = list(lanes)
        if not self.lanes:
            raise ValueError("a KVMSR lane set cannot be empty")

    @classmethod
    def whole_machine(cls, config: MachineConfig) -> "LaneSet":
        return cls(range(config.total_lanes))

    @classmethod
    def nodes(cls, config: MachineConfig, first: int, count: int) -> "LaneSet":
        lo = config.first_lane_of_node(first)
        hi = config.first_lane_of_node(first + count - 1) + config.lanes_per_node
        return cls(range(lo, hi))

    @classmethod
    def one_per_accel(cls, config: MachineConfig) -> "LaneSet":
        """The first lane of every accelerator (BFS's per-accel masters)."""
        return cls(
            config.first_lane_of_accel(a) for a in range(config.total_accels)
        )

    def __len__(self) -> int:
        return len(self.lanes)

    def __getitem__(self, i: int) -> int:
        return self.lanes[i]

    def __iter__(self):
        return iter(self.lanes)

    def by_node(self, config: MachineConfig) -> List[Tuple[int, List[int]]]:
        """Group lanes by node: ``[(node, [lanes...]), ...]`` in node order."""
        groups: dict[int, List[int]] = {}
        for lane in self.lanes:
            groups.setdefault(config.node_of(lane), []).append(lane)
        return sorted(groups.items())


#: one map assignment: (lane, key_lo, key_hi) — the lane maps keys [lo, hi)
Assignment = Tuple[int, int, int]


class MapBinding:
    """Base: partition ``n_keys`` integer keys across a lane set."""

    def partition(self, n_keys: int, lanes: LaneSet) -> List[Assignment]:
        raise NotImplementedError

    #: keys the master withholds for dynamic distribution (PBMW only)
    def master_pool(self, n_keys: int, lanes: LaneSet) -> Tuple[int, int]:
        return (n_keys, n_keys)  # empty


class BlockBinding(MapBinding):
    """Equal, contiguous blocks (the kv_map default)."""

    def partition(self, n_keys: int, lanes: LaneSet) -> List[Assignment]:
        L = len(lanes)
        out: List[Assignment] = []
        for i, lane in enumerate(lanes):
            lo = (n_keys * i) // L
            hi = (n_keys * (i + 1)) // L
            if lo < hi:
                out.append((lane, lo, hi))
        return out

    def __repr__(self) -> str:
        return "BlockBinding()"


class PBMWBinding(MapBinding):
    """Partial-Block + Master-Worker.

    Lanes receive ``initial_fraction`` of the key space as static blocks;
    the master keeps the rest and grants ``chunk_size``-key slices to lanes
    that finish early.
    """

    def __init__(self, initial_fraction: float = 0.5, chunk_size: int = 32):
        if not (0.0 < initial_fraction <= 1.0):
            raise ValueError("initial fraction must be in (0, 1]")
        if chunk_size < 1:
            raise ValueError("chunk size must be positive")
        self.initial_fraction = initial_fraction
        self.chunk_size = chunk_size

    def partition(self, n_keys: int, lanes: LaneSet) -> List[Assignment]:
        static = int(n_keys * self.initial_fraction)
        return BlockBinding().partition(static, lanes)

    def master_pool(self, n_keys: int, lanes: LaneSet) -> Tuple[int, int]:
        static = int(n_keys * self.initial_fraction)
        return (static, n_keys)

    def __repr__(self) -> str:
        return (
            f"PBMWBinding(initial_fraction={self.initial_fraction}, "
            f"chunk_size={self.chunk_size})"
        )


class KeyToLaneBinding(MapBinding):
    """Each key is its own task, placed by a user function ``fn(key)``."""

    def __init__(self, fn: Callable[[int], int]):
        self.fn = fn

    def partition(self, n_keys: int, lanes: LaneSet) -> List[Assignment]:
        return [(self.fn(k), k, k + 1) for k in range(n_keys)]

    def __repr__(self) -> str:
        return f"KeyToLaneBinding({getattr(self.fn, '__name__', self.fn)!r})"


class ReduceBinding:
    """Base: choose the lane that reduces a given key."""

    def lane_for(self, key, lanes: LaneSet) -> int:
        raise NotImplementedError


class HashBinding(ReduceBinding):
    """Hash keys across the lane set (the kv_reduce default).

    Hashing "ensures good load balance" (paper §4.1.2) even for skewed
    key popularity, because hot keys still land on a fixed owner lane that
    can combine locally.
    """

    def __init__(self, seed: int = 0):
        self.seed = seed
        #: the seed's mix is key-independent — computed once, not per
        #: emit (lane_for runs on every kv_emit)
        self._seed_mix = splitmix64(seed)

    def lane_for(self, key, lanes: LaneSet) -> int:
        # splitmix64 open-coded for the dominant int-key case: this runs
        # once per emitted tuple machine-wide, and the call fan-out
        # (stable_hash -> splitmix64, __len__, __getitem__) costs more
        # than the mixing arithmetic.  Bit-identical to stable_hash.
        if key.__class__ is int:
            x = (key + 0x9E3779B97F4A7C15) & _MASK64
            x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
            x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
            h = x ^ (x >> 31)
        else:
            h = stable_hash(key)
        lst = lanes.lanes
        return lst[(h ^ self._seed_mix) % len(lst)]

    def __repr__(self) -> str:
        return f"HashBinding(seed={self.seed})"


class CustomReduceBinding(ReduceBinding):
    """User-supplied key -> lane placement."""

    def __init__(self, fn: Callable[[object], int]):
        self.fn = fn

    def lane_for(self, key, lanes: LaneSet) -> int:
        return self.fn(key)

    def __repr__(self) -> str:
        return (
            f"CustomReduceBinding({getattr(self.fn, '__name__', self.fn)!r})"
        )


class DataDrivenBinding(ReduceBinding):
    """Place each task on the node that owns the key's data (§2.3's
    "Data-driven (future)" scheme).

    The system queries the address translation: ``addr_fn(key)`` names
    the key's primary datum; the swizzle descriptor resolves its physical
    node; the task lands on one of that node's lanes (hashed within the
    node for balance).  Tasks then hit *local* DRAM — the 7:1 latency and
    3:1 bandwidth advantages of §3.2 — at the cost of inheriting the
    data layout's balance.
    """

    def __init__(self, gmem, addr_fn: Callable[[object], int], config):
        self.gmem = gmem
        self.addr_fn = addr_fn
        self.config = config
        self._lanes_by_node: dict[int, List[int]] = {}
        self._lanes_key: Optional[int] = None

    def _node_lanes(self, lanes: LaneSet) -> dict:
        if self._lanes_key != id(lanes):
            groups: dict[int, List[int]] = {}
            for lane in lanes:
                groups.setdefault(self.config.node_of(lane), []).append(lane)
            self._lanes_by_node = groups
            self._lanes_key = id(lanes)
        return self._lanes_by_node

    def lane_for(self, key, lanes: LaneSet) -> int:
        node = self.gmem.node_of(self.addr_fn(key))
        groups = self._node_lanes(lanes)
        node_lanes = groups.get(node)
        if not node_lanes:
            # the owning node has no lanes in this KVMSR set: fall back
            # to hashing over the whole set
            return lanes[stable_hash(key) % len(lanes)]
        return node_lanes[stable_hash(key) % len(node_lanes)]
