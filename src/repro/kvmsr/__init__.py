"""KVMSR: key-value map-shuffle-reduce (the paper's primary contribution)."""

from .binding import (
    BlockBinding,
    CustomReduceBinding,
    DataDrivenBinding,
    HashBinding,
    KeyToLaneBinding,
    LaneSet,
    MapBinding,
    PBMWBinding,
    ReduceBinding,
    splitmix64,
    stable_hash,
)
from .combining import CombiningCache
from .doall import make_do_all
from .engine import (
    KVMSRError,
    KVMSRJob,
    MapTask,
    ReduceTask,
    emit_to_reduce,
    ensure_registered,
    job_of,
)
from .iterator import ArrayInput, InputSpec, ListInput, RangeInput

__all__ = [
    "KVMSRJob",
    "MapTask",
    "ReduceTask",
    "KVMSRError",
    "job_of",
    "emit_to_reduce",
    "ensure_registered",
    "CombiningCache",
    "make_do_all",
    "LaneSet",
    "MapBinding",
    "ReduceBinding",
    "BlockBinding",
    "HashBinding",
    "PBMWBinding",
    "KeyToLaneBinding",
    "CustomReduceBinding",
    "DataDrivenBinding",
    "stable_hash",
    "splitmix64",
    "RangeInput",
    "ArrayInput",
    "ListInput",
    "InputSpec",
]
