"""KVMSR: key-value map-shuffle-reduce over shared global state (§2.2).

This module is this repo's rendering of the paper's 1,586-LoC UDWeave KVMSR
library.  The moving parts, all UDWeave threads themselves:

* :class:`KVMSRMaster` — one per invocation.  Partitions the key space per
  the map binding, drives the hierarchical start broadcast, detects
  termination, runs the flush phase, and fires the completion continuation.
* :class:`NodeCoordinator` — per-node control lane (the paper's multi-level
  control for "synchronization and broadcast overhead").  Fans a phase out
  to the node's lanes and aggregates their replies.
* :class:`MapperLane` — per-lane map dispatcher: walks its key block,
  keeps a bounded number of map tasks in flight (matching parallelism to
  "physical thread resources without any application programmer effort",
  §4.1.3), and for PBMW asks the master for more work when it runs dry.
* :class:`MapTask` / :class:`ReduceTask` — base classes for user map and
  reduce workers, providing ``kv_emit``, ``kv_map_return``,
  ``kv_reduce_return``, and the flush hooks.

Termination detection: every map task reports its emit count on
completion; counts aggregate lane → node → master.  Reduce completions
bump a per-lane scratchpad counter; once all maps are done the master
polls the reduce lanes (hierarchically) until the summed reduce count
equals the total emit count.  Counts only grow and never exceed the
total, so a matching sum proves quiescence.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.machine.events import NEW_THREAD, MessageRecord
from repro.udweave.context import LaneContext
from repro.udweave.runtime import UpDownRuntime
from repro.udweave.thread import UDThread, event

from .binding import (
    BlockBinding,
    HashBinding,
    LaneSet,
    MapBinding,
    ReduceBinding,
)
from .iterator import ArrayInput, InputSpec, ListInput, RangeInput


class KVMSRError(RuntimeError):
    """Raised for malformed jobs or protocol violations."""


# ---------------------------------------------------------------------------
# Job descriptor
# ---------------------------------------------------------------------------


class KVMSRJob:
    """One KVMSR invocation: what to run, over what keys, bound where.

    The job object is host-side configuration (the program image knows it
    by ``job_id``); task threads reach it through
    ``ctx.runtime`` for binding decisions and the ``payload`` —
    application state such as region addresses (the shared global data
    structures of Figure 3).
    """

    def __init__(
        self,
        runtime: UpDownRuntime,
        map_cls: type,
        input_spec: InputSpec,
        reduce_cls: Optional[type] = None,
        lanes: Optional[LaneSet] = None,
        reduce_lanes: Optional[LaneSet] = None,
        map_binding: Optional[MapBinding] = None,
        reduce_binding: Optional[ReduceBinding] = None,
        max_inflight: int = 64,
        poll_interval_cycles: float = 2_000.0,
        master_lane: Optional[int] = None,
        payload: Any = None,
        name: Optional[str] = None,
    ) -> None:
        if not issubclass(map_cls, MapTask):
            raise KVMSRError("map_cls must subclass kvmsr.MapTask")
        if reduce_cls is not None and not issubclass(reduce_cls, ReduceTask):
            raise KVMSRError("reduce_cls must subclass kvmsr.ReduceTask")
        if max_inflight < 1:
            raise KVMSRError("max_inflight must be at least 1")
        self.runtime = runtime
        self.map_cls = map_cls
        self.reduce_cls = reduce_cls
        self.input = input_spec
        self.lanes = lanes or LaneSet.whole_machine(runtime.config)
        self.reduce_lanes = reduce_lanes or self.lanes
        self.map_binding = map_binding or BlockBinding()
        self.reduce_binding = reduce_binding or HashBinding()
        self.max_inflight = max_inflight
        self.poll_interval_cycles = poll_interval_cycles
        self.master_lane = self.lanes[0] if master_lane is None else master_lane
        self.payload = payload
        self.name = name or map_cls.__name__

        ensure_registered(runtime)
        runtime.register(map_cls)
        if reduce_cls is not None:
            runtime.register(reduce_cls)
        self.job_id = _register_job(runtime, self)
        # Entry labels resolved once at job construction: kv_emit runs
        # once per intermediate tuple (once per edge in PageRank), and an
        # f-string + registry lookup per emit is pure hot-path waste.
        self._map_entry_label = f"{map_cls.__name__}::__map_entry__"
        self.map_entry_label_id = runtime.label_id(self._map_entry_label)
        self._reduce_entry_label = None
        self._flush_entry_label = None
        self.reduce_entry_label_id = None
        if reduce_cls is not None:
            self._reduce_entry_label = (
                f"{reduce_cls.__name__}::__reduce_entry__"
            )
            self._flush_entry_label = f"{reduce_cls.__name__}::__flush_entry__"
            self.reduce_entry_label_id = runtime.label_id(
                self._reduce_entry_label
            )
        #: batched-dispatch plan cache (``repro.udweave.ir``): lowered
        #: lazily on the job's first emitted tuple; ``_batch_tried``
        #: keeps un-lowerable handlers from re-tracing per emit.
        self._batch_plan = None
        self._batch_tried = False
        #: destination-lane memo for the kv_emit hot path.  Only armed
        #: for the stateless :class:`HashBinding` — a pure function of
        #: the key, so caching is observationally invisible; custom or
        #: data-driven bindings keep calling ``lane_for`` every emit.
        self._lane_memo = (
            {} if type(self.reduce_binding) is HashBinding else None
        )
        #: kv_emit's fixed charge (hash + lane arithmetic + send), summed
        #: once.  Table-2 costs are integers, so one float add is
        #: bit-identical to the two-step charge it replaces.
        _c = runtime.config.costs
        self._emit_cycles = 2 * _c.instruction + _c.send_message

    # -- label helpers -------------------------------------------------

    @property
    def reduce_entry_label(self) -> str:
        assert self._reduce_entry_label is not None
        return self._reduce_entry_label

    @property
    def flush_entry_label(self) -> str:
        assert self._flush_entry_label is not None
        return self._flush_entry_label

    @property
    def map_entry_label(self) -> str:
        return self._map_entry_label

    # -- launching -------------------------------------------------------

    def launch(self, cont_tag: str = "kvmsr_done") -> None:
        """Host-side start; completion lands in the host mailbox."""
        self.runtime.start(
            self.master_lane,
            "KVMSRMaster::start",
            self.job_id,
            cont=self.runtime.host_evw(cont_tag),
        )

    def launch_from(self, ctx: LaneContext, cont_evw: Optional[int]) -> None:
        """Device-side start: an application thread chains a KVMSR phase."""
        ctx.spawn(
            self.master_lane, "KVMSRMaster::start", self.job_id, cont=cont_evw
        )


def _registry(runtime: UpDownRuntime) -> Dict[int, KVMSRJob]:
    reg = getattr(runtime, "_kvmsr_jobs", None)
    if reg is None:
        reg = {}
        runtime._kvmsr_jobs = reg  # type: ignore[attr-defined]
    return reg


def _register_job(runtime: UpDownRuntime, job: KVMSRJob) -> int:
    reg = _registry(runtime)
    job_id = len(reg)
    reg[job_id] = job
    return job_id


def _lower_job_reduce_entry(job, runtime, operands):
    """Lower + validate ``job``'s reduce entry once; cache the outcome."""
    from repro.udweave.ir import lower_reduce_entry

    job._batch_tried = True
    plan = lower_reduce_entry(runtime, job, operands)
    if plan.parkable:
        job._batch_plan = plan
        return plan
    return None


def job_of(ctx: LaneContext, job_id: int) -> KVMSRJob:
    """The job descriptor for ``job_id`` on this machine."""
    try:
        return ctx.runtime._kvmsr_jobs[job_id]
    except (AttributeError, KeyError):
        raise KVMSRError(f"unknown KVMSR job id {job_id}") from None


def _phase_recorder(ctx: LaneContext):
    """The runtime's flight recorder, if phase spans are being collected.

    Simulated-zero-cost like ``ud_print``: phase transitions are host-side
    observations (a handful per job), never lane cycles.
    """
    rec = ctx.runtime.recorder
    return rec if rec is not None and rec.record_phases else None


# ---------------------------------------------------------------------------
# User task base classes
# ---------------------------------------------------------------------------


class MapTask(UDThread):
    """Base class for ``kv_map`` workers.

    Subclasses implement ``kv_map(self, ctx, key, *values)`` as a plain
    method (invoked inside the framework's entry event) plus any number of
    additional ``@event`` handlers for split-phase continuations (e.g.
    PageRank's ``returnRead``).  Every activation path must finish with
    either ``ctx.yield_()`` (more events coming) or ``self.kv_map_return
    (ctx)`` (task complete — retires the thread and reports to KVMSR).
    """

    def __init__(self) -> None:
        self._job_id: int = -1
        self._job: Optional[KVMSRJob] = None
        self._done_evw: Optional[int] = None
        self._emitted: int = 0
        self._record: List[Optional[Tuple[Any, ...]]] = []
        self._chunks_left: int = 0
        self._key: Any = None

    # -- framework entry -------------------------------------------------

    @event
    def __map_entry__(self, ctx: LaneContext, job_id: int, done_evw: int, key):
        self._job_id = job_id
        self._done_evw = done_evw
        job = self._job = job_of(ctx, job_id)
        inp = job.input
        if isinstance(inp, RangeInput):
            self.kv_map(ctx, key)
        elif isinstance(inp, ListInput):
            actual_key, values = inp.pair(key)
            self.kv_map(ctx, actual_key, *values)
        elif isinstance(inp, ArrayInput):
            self._key = key
            base = inp.record_addr(key)
            nchunks = -(-inp.stride_words // 8)
            self._chunks_left = nchunks
            # Chunk responses land tagged with their index; a preallocated
            # slot list keeps reassembly O(chunks) with no dict churn or
            # per-record sort.
            self._record = [None] * nchunks
            for c in range(nchunks):
                lo = c * 8
                n = min(8, inp.stride_words - lo)
                ctx.send_dram_read(base + 8 * lo, n, "__map_record__", tag=c)
            ctx.yield_()
        else:
            raise KVMSRError(f"unsupported input type {type(inp).__name__}")

    @event
    def __map_record__(self, ctx: LaneContext, tag: int, *words):
        self._record[tag] = words
        self._chunks_left -= 1
        if self._chunks_left == 0:
            flat: List[Any] = []
            for chunk in self._record:
                flat.extend(chunk)
            self._record = []
            self.kv_map(ctx, self._key, *flat)
        else:
            ctx.yield_()

    # -- user API ---------------------------------------------------------

    def job(self, ctx: LaneContext) -> KVMSRJob:
        """This task's job descriptor (cached across the task's events)."""
        j = self._job
        if j is None:
            j = self._job = job_of(ctx, self._job_id)
        return j

    def kv_map(self, ctx: LaneContext, key, *values) -> None:
        raise NotImplementedError(
            f"{type(self).__name__} must implement kv_map"
        )

    def kv_emit(self, ctx: LaneContext, key, *values) -> None:
        """Emit an intermediate ``<key, values>`` tuple (``kv_map_emit``).

        The tuple becomes a ``kv_reduce`` task on the lane chosen by the
        job's reduce binding — an asynchronous send with no response, so
        "each generates additional parallelism" (§4.1.2).
        """
        job = self._job
        if job is None:
            job = self._job = job_of(ctx, self._job_id)
        if job.reduce_cls is None:
            raise KVMSRError(
                f"job {job.name!r} has no reduce phase; kv_emit is invalid"
            )
        if ctx.__class__ is not LaneContext:
            # IR lowering (repro.udweave.ir): record the intrinsic and
            # abort — an emitting body is never batch-safe, and tracing
            # past this point would hash a symbolic key.
            ctx.op_kv_emit(job, key, values)
        memo = job._lane_memo
        if memo is None:
            lane = job.reduce_binding.lane_for(key, job.reduce_lanes)
        else:
            lane = memo.get(key)
            if lane is None:
                lane = memo[key] = job.reduce_binding.lane_for(
                    key, job.reduce_lanes
                )
        # Packet-aware emit, open-coded: the entry label was interned at
        # job construction and the binding's lanes were range-checked
        # there, so the resolved fast path feeds the coalescing fabric
        # without per-tuple lookups or call dispatch.  The summed cycle
        # charge lands in the same order as work(2) + spawn_resolved(),
        # so every simulated timestamp is bit-identical to spawn().
        ctx.cycles += job._emit_cycles
        ln = ctx.lane
        sim = ctx.sim
        operands = (self._job_id, key) + values
        if sim._park_active:
            # Batched dispatch: a batch-safe reduce entry parks on its
            # destination lane instead of riding the heap — priced and
            # sequenced identically, executed array-at-a-time just
            # before that lane is next observed.  The first emitted
            # tuple of a job triggers lowering + validation lazily (it
            # supplies the operand arity); un-lowerable handlers stay
            # on the interpreter forever.
            plan = job._batch_plan
            if plan is None and not job._batch_tried:
                plan = _lower_job_reduce_entry(job, ctx.runtime, operands)
            if plan is not None:
                sim.park_emit(
                    plan, lane, operands, ctx.start + ctx.cycles,
                    ln.network_id, ln.node,
                )
                self._emitted += 1
                return
        sim.send(
            MessageRecord(
                lane,
                NEW_THREAD,
                job._reduce_entry_label,
                operands,
                None,
                ln.network_id,
                "msg",
                job.reduce_entry_label_id,
            ),
            ctx.start + ctx.cycles,
            ln.node,
        )
        self._emitted += 1

    def add_emitted(self, n: int) -> None:
        """Credit emits performed on this task's behalf by helper threads.

        Applications that build custom local parallelism inside a map task
        (BFS's per-accelerator master-worker, §4.2.2) have the workers emit
        with :func:`emit_to_reduce` and report their counts back; the map
        task credits them here before ``kv_map_return`` so termination
        detection stays exact.
        """
        self._emitted += n

    def kv_map_return(self, ctx: LaneContext) -> None:
        """Report completion to KVMSR and retire this map thread (§2.2)."""
        if self._done_evw is None:
            raise KVMSRError("kv_map_return outside a KVMSR activation")
        ctx.send_event(self._done_evw, self._emitted)
        if not (ctx.yielded or ctx.terminated):
            ctx.yield_terminate()


class ReduceTask(UDThread):
    """Base class for ``kv_reduce`` workers.

    Subclasses implement ``kv_reduce(self, ctx, key, *values)``; each
    completion path must end with ``self.kv_reduce_return(ctx)``.  An
    optional ``kv_flush(self, ctx)`` runs once per reduce lane after
    quiescence (used to drain combining caches to DRAM); it must end with
    ``self.kv_flush_return(ctx)``.
    """

    def __init__(self) -> None:
        self._job_id: int = -1
        self._job: Optional[KVMSRJob] = None
        self._flush_ack: Optional[int] = None

    @event
    def __reduce_entry__(self, ctx: LaneContext, job_id: int, key, *values):
        self._job_id = job_id
        self.kv_reduce(ctx, key, *values)

    @event
    def __flush_entry__(self, ctx: LaneContext, job_id: int, ack_evw: int):
        self._job_id = job_id
        self._flush_ack = ack_evw
        self.kv_flush(ctx)

    # -- user API ----------------------------------------------------------

    def job(self, ctx: LaneContext) -> KVMSRJob:
        """This task's job descriptor (cached across the task's events)."""
        j = self._job
        if j is None:
            j = self._job = job_of(ctx, self._job_id)
        return j

    def kv_reduce(self, ctx: LaneContext, key, *values) -> None:
        raise NotImplementedError(
            f"{type(self).__name__} must implement kv_reduce"
        )

    def kv_reduce_return(self, ctx: LaneContext) -> None:
        """Mark one reduce tuple fully processed; retires the thread.

        Open-coded scratchpad bump (read + write, charged separately like
        ``sp_read``/``sp_write`` would): one of these runs per emitted
        tuple, machine-wide.
        """
        if ctx.__class__ is not LaneContext:
            # IR lowering: a proven composite intrinsic (KVR_RETURN).
            ctx.op_kvr_return(self._job_id)
            return
        cost = ctx.costs.scratchpad_access
        ctx.cycles += cost
        ctx.cycles += cost
        sp = ctx.lane.scratchpad
        counter = ("kvr", self._job_id)
        sp[counter] = sp.get(counter, 0) + 1
        if not (ctx.yielded or ctx.terminated):
            ctx.yield_terminate()

    def kv_flush(self, ctx: LaneContext) -> None:
        self.kv_flush_return(ctx)

    def kv_flush_return(self, ctx: LaneContext, value=0) -> None:
        """End the flush; ``value`` is summed across lanes and delivered in
        the completion message (a cheap global reduction: BFS reports the
        number of vertices appended to the next frontier, TC the triangle
        total)."""
        if self._flush_ack is None:
            raise KVMSRError("kv_flush_return outside a flush activation")
        # Reset the epoch counter so the job object can be relaunched
        # (PageRank iterations, BFS rounds).
        ctx.sp_write(("kvr", self._job_id), 0)
        ctx.send_event(self._flush_ack, value)
        if not (ctx.yielded or ctx.terminated):
            ctx.yield_terminate()


# ---------------------------------------------------------------------------
# Framework threads
# ---------------------------------------------------------------------------


class LaneProbe(UDThread):
    """Reads one lane's reduce counter and replies (quiescence poll)."""

    @event
    def probe(self, ctx: LaneContext, job_id: int, reply_evw: int):
        count = ctx.sp_read(("kvr", job_id), 0)
        ctx.send_event(reply_evw, count)
        ctx.yield_terminate()


class MapperLane(UDThread):
    """Per-lane map dispatcher: throttled task issue over a key block."""

    def __init__(self) -> None:
        self.job_id = -1
        self._job: Optional[KVMSRJob] = None
        self.coord_evw: Optional[int] = None
        self.master_req_evw: Optional[int] = None
        self.next_key = 0
        self.end_key = 0
        self.inflight = 0
        self.tasks = 0
        self.emitted = 0

    @event
    def start(
        self,
        ctx: LaneContext,
        job_id: int,
        coord_evw: int,
        master_req_evw,
        lo: int,
        hi: int,
    ):
        self.job_id = job_id
        self._job = job_of(ctx, job_id)
        self.coord_evw = coord_evw
        self.master_req_evw = master_req_evw
        self.next_key, self.end_key = lo, hi
        self._pump(ctx)

    @event
    def task_done(self, ctx: LaneContext, n_emitted: int):
        self.inflight -= 1
        self.tasks += 1
        self.emitted += n_emitted
        self._pump(ctx)

    @event
    def grant(self, ctx: LaneContext, lo: int, hi: int):
        """PBMW work grant from the master (empty grant = pool dry)."""
        if lo == hi:
            self.master_req_evw = None  # stop asking
            self._finish_or_wait(ctx)
        else:
            self.next_key, self.end_key = lo, hi
            self._pump(ctx)

    def _pump(self, ctx: LaneContext) -> None:
        job = self._job
        if job is None:
            job = self._job = job_of(ctx, self.job_id)
        next_key = self.next_key
        end_key = self.end_key
        inflight = self.inflight
        max_inflight = job.max_inflight
        if inflight < max_inflight and next_key < end_key:
            # Spawn-loop hot path: every map task in the whole run is
            # issued here, so hoist the loop invariants (bound methods,
            # lane id, interned entry label) out of the loop and use the
            # pre-resolved spawn — label and lane were validated at job
            # construction; charged cycles are identical to spawn().
            spawn = ctx.spawn_resolved
            work = ctx.work
            nwid = ctx.lane.network_id
            label_id = job.map_entry_label_id
            label_name = job._map_entry_label
            job_id = self.job_id
            done_evw = ctx.self_evw("task_done")
            while inflight < max_inflight and next_key < end_key:
                spawn(nwid, label_id, label_name, job_id, done_evw, next_key)
                next_key += 1
                inflight += 1
                work(2)  # loop + bookkeeping
            self.next_key = next_key
            self.inflight = inflight
        if self.inflight == 0 and self.next_key >= self.end_key:
            if self.master_req_evw is not None:
                ctx.send_event(
                    self.master_req_evw, ctx.self_evw("grant")
                )
                ctx.yield_()
            else:
                self._finish_or_wait(ctx)
        else:
            ctx.yield_()

    def _finish_or_wait(self, ctx: LaneContext) -> None:
        ctx.send_event(self.coord_evw, self.tasks, self.emitted)
        ctx.yield_terminate()


class NodeCoordinator(UDThread):
    """Per-node control lane: fan-out + aggregation for one phase.

    A fresh coordinator thread is spawned per node per phase (map start,
    count poll, flush) — thread creation is free on UpDown (Table 2), so
    this is how real UDWeave programs structure control too.
    """

    def __init__(self) -> None:
        self.master_evw: Optional[int] = None
        self.pending = 0
        self.acc_a = 0
        self.acc_b = 0

    # -- map phase ---------------------------------------------------------

    @event
    def coord_start(
        self,
        ctx: LaneContext,
        job_id: int,
        master_evw: int,
        master_req_evw,
        assignments,
    ):
        self.master_evw = master_evw
        self.pending = len(assignments)
        reply = ctx.self_evw("mapper_done")
        for lane, lo, hi in assignments:
            ctx.spawn(
                lane, "MapperLane::start", job_id, reply, master_req_evw, lo, hi
            )
            ctx.work(2)
        ctx.yield_()

    @event
    def mapper_done(self, ctx: LaneContext, n_tasks: int, n_emitted: int):
        self.acc_a += n_tasks
        self.acc_b += n_emitted
        self.pending -= 1
        if self.pending == 0:
            ctx.send_event(self.master_evw, self.acc_a, self.acc_b)
            ctx.yield_terminate()
        else:
            ctx.yield_()

    # -- quiescence poll ----------------------------------------------------

    @event
    def count_req(self, ctx: LaneContext, job_id: int, master_evw: int, lanes):
        self.master_evw = master_evw
        self.pending = len(lanes)
        self.acc_a = 0
        reply = ctx.self_evw("count_reply")
        for lane in lanes:
            ctx.spawn(lane, "LaneProbe::probe", job_id, reply)
            ctx.work(1)
        ctx.yield_()

    @event
    def count_reply(self, ctx: LaneContext, count: int):
        self.acc_a += count
        self.pending -= 1
        if self.pending == 0:
            ctx.send_event(self.master_evw, self.acc_a)
            ctx.yield_terminate()
        else:
            ctx.yield_()

    # -- flush phase ---------------------------------------------------------

    @event
    def flush_req(
        self,
        ctx: LaneContext,
        job_id: int,
        master_evw: int,
        flush_label: str,
        lanes,
    ):
        self.master_evw = master_evw
        self.pending = len(lanes)
        ack = ctx.self_evw("flush_ack")
        for lane in lanes:
            ctx.spawn(lane, flush_label, job_id, ack)
            ctx.work(1)
        ctx.yield_()

    @event
    def flush_ack(self, ctx: LaneContext, value=0):
        self.acc_b += value
        self.pending -= 1
        if self.pending == 0:
            ctx.send_event(self.master_evw, self.acc_b)
            ctx.yield_terminate()
        else:
            ctx.yield_()


class KVMSRMaster(UDThread):
    """Drives one KVMSR invocation end to end."""

    def __init__(self) -> None:
        self.job_id = -1
        self.cont: Optional[int] = None
        self.phase = "idle"
        self.nodes_pending = 0
        self.total_tasks = 0
        self.total_emitted = 0
        self.reduced_seen = 0
        self.pool_next = 0
        self.pool_end = 0
        self.poll_rounds = 0
        self.flush_value = 0

    # -- start ---------------------------------------------------------------

    @event
    def start(self, ctx: LaneContext, job_id: int):
        self.job_id = job_id
        self.cont = ctx.ccont
        job = job_of(ctx, job_id)
        ctx.ud_print(f"UDKVMSR started for {job.name}")
        rec = _phase_recorder(ctx)
        if rec is not None:
            rec.phase_begin(job.name, "job", ctx.time)
        n_keys = job.input.n_keys
        if n_keys == 0:
            self._complete(ctx)
            return
        assignments = job.map_binding.partition(n_keys, job.lanes)
        self.pool_next, self.pool_end = job.map_binding.master_pool(
            n_keys, job.lanes
        )
        master_req_evw = (
            ctx.self_evw("request_work")
            if self.pool_next < self.pool_end
            else None
        )
        groups = _group_assignments(ctx, assignments)
        self.phase = "map"
        if rec is not None:
            # The map span covers the start broadcast, the map tasks, and
            # the shuffle they emit (kv_emit sends happen *during* map).
            rec.phase_begin(job.name, "map", ctx.time)
        self.nodes_pending = len(groups)
        reply = ctx.self_evw("node_done")
        for coord_lane, asgs in groups:
            ctx.spawn(
                coord_lane,
                "NodeCoordinator::coord_start",
                job_id,
                reply,
                master_req_evw,
                asgs,
            )
            ctx.work(2)
        ctx.work(len(assignments))  # partition arithmetic
        ctx.yield_()

    # -- PBMW work requests ----------------------------------------------------

    @event
    def request_work(self, ctx: LaneContext, reply_evw: int):
        job = job_of(ctx, self.job_id)
        chunk = getattr(job.map_binding, "chunk_size", 32)
        lo = self.pool_next
        hi = min(lo + chunk, self.pool_end)
        self.pool_next = hi
        ctx.send_event(reply_evw, lo, hi)
        ctx.yield_()

    # -- map completion ---------------------------------------------------------

    @event
    def node_done(self, ctx: LaneContext, n_tasks: int, n_emitted: int):
        self.total_tasks += n_tasks
        self.total_emitted += n_emitted
        self.nodes_pending -= 1
        if self.nodes_pending > 0:
            ctx.yield_()
            return
        job = job_of(ctx, self.job_id)
        rec = _phase_recorder(ctx)
        if rec is not None:
            rec.phase_end(job.name, "map", ctx.time)
        if job.reduce_cls is None or self.total_emitted == 0:
            self._complete(ctx)
        else:
            self.phase = "reduce"
            if rec is not None:
                # In-flight reduce drain: from the last map completion to
                # confirmed quiescence (the emit/reduce counts matching).
                rec.phase_begin(job.name, "reduce", ctx.time)
            self._poll(ctx)

    # -- quiescence -----------------------------------------------------------

    def _poll(self, ctx: LaneContext) -> None:
        job = job_of(ctx, self.job_id)
        rec = _phase_recorder(ctx)
        if rec is not None:
            rec.mark("quiescence_poll", ctx.time, job.name)
        groups = job.reduce_lanes.by_node(ctx.config)
        self.nodes_pending = len(groups)
        self.reduced_seen = 0
        self.poll_rounds += 1
        reply = ctx.self_evw("count_done")
        for _node, lanes in groups:
            ctx.spawn(
                lanes[0],
                "NodeCoordinator::count_req",
                self.job_id,
                reply,
                lanes,
            )
            ctx.work(1)
        ctx.yield_()

    @event
    def count_done(self, ctx: LaneContext, count: int):
        self.reduced_seen += count
        self.nodes_pending -= 1
        if self.nodes_pending > 0:
            ctx.yield_()
            return
        if self.reduced_seen >= self.total_emitted:
            self._flush(ctx)
        else:
            job = job_of(ctx, self.job_id)
            ctx.send_event(
                ctx.self_evw("poll_again"),
                delay=job.poll_interval_cycles,
            )
            ctx.yield_()

    @event
    def poll_again(self, ctx: LaneContext):
        self._poll(ctx)

    # -- flush ------------------------------------------------------------------

    def _flush(self, ctx: LaneContext) -> None:
        job = job_of(ctx, self.job_id)
        rec = _phase_recorder(ctx)
        if rec is not None:
            rec.phase_end(job.name, "reduce", ctx.time)
            rec.phase_begin(job.name, "flush", ctx.time)
        groups = job.reduce_lanes.by_node(ctx.config)
        self.phase = "flush"
        self.nodes_pending = len(groups)
        reply = ctx.self_evw("flush_done")
        for _node, lanes in groups:
            ctx.spawn(
                lanes[0],
                "NodeCoordinator::flush_req",
                self.job_id,
                reply,
                job.flush_entry_label,
                lanes,
            )
            ctx.work(1)
        ctx.yield_()

    @event
    def flush_done(self, ctx: LaneContext, value=0):
        self.flush_value += value
        self.nodes_pending -= 1
        if self.nodes_pending == 0:
            self._complete(ctx)
        else:
            ctx.yield_()

    # -- completion ----------------------------------------------------------------

    def _complete(self, ctx: LaneContext) -> None:
        job = job_of(ctx, self.job_id)
        rec = _phase_recorder(ctx)
        if rec is not None:
            # phase_end is a no-op for spans that never opened, so this
            # closes whichever phases this job actually reached.
            t = ctx.time
            rec.phase_end(job.name, "flush", t)
            rec.phase_end(job.name, "map", t)
            rec.phase_end(job.name, "job", t)
        ctx.ud_print(f"UDKVMSR finished for {job.name}")
        ctx.send_event(
            self.cont,
            self.total_tasks,
            self.total_emitted,
            self.poll_rounds,
            self.flush_value,
        )
        ctx.yield_terminate()


def emit_to_reduce(ctx: LaneContext, job_id: int, key, *values) -> None:
    """Emit an intermediate tuple from *any* thread (not just a MapTask).

    Used by application worker threads nested inside a map task; the
    enclosing map task must credit these emits via
    :meth:`MapTask.add_emitted` before returning.
    """
    job = job_of(ctx, job_id)
    if job.reduce_cls is None:
        raise KVMSRError(f"job {job.name!r} has no reduce phase")
    lane = job.reduce_binding.lane_for(key, job.reduce_lanes)
    ctx.work(2)
    ctx.spawn(lane, job.reduce_entry_label_id, job_id, key, *values)


def _group_assignments(ctx: LaneContext, assignments) -> List[Tuple[int, list]]:
    """Group map assignments by node; coordinator sits on each group's
    first assigned lane."""
    cfg = ctx.config
    groups: Dict[int, list] = {}
    for asg in assignments:
        groups.setdefault(cfg.node_of(asg[0]), []).append(asg)
    return [(asgs[0][0], asgs) for _node, asgs in sorted(groups.items())]


_FRAMEWORK_CLASSES = (KVMSRMaster, NodeCoordinator, MapperLane, LaneProbe)


#: quiescence-poll machinery: a machine executing only these is waiting,
#: not progressing, so the liveness watchdog must not count them.
_IDLE_POLL_LABELS = frozenset({
    "KVMSRMaster::poll_again",
    "KVMSRMaster::count_done",
    "NodeCoordinator::count_req",
    "NodeCoordinator::count_reply",
    "LaneProbe::probe",
})


def _credit_diagnostics(sim) -> Dict[str, Any]:
    """Per-job credit accounting for a watchdog stall dump.

    Shows exactly what a lost reduce tuple looks like: ``outstanding``
    credits that never arrive while the master polls forever.
    """
    credits: Dict[int, int] = {}
    for lane in sim._lanes.values():
        for key, value in lane.scratchpad.items():
            if isinstance(key, tuple) and len(key) == 2 and key[0] == "kvr":
                credits[key[1]] = credits.get(key[1], 0) + value
    masters = []
    for lane in sim._lanes.values():
        for thread in lane.threads.values():
            if isinstance(thread, KVMSRMaster):
                seen = credits.get(thread.job_id, 0)
                masters.append({
                    "job_id": thread.job_id,
                    "phase": thread.phase,
                    "total_emitted": thread.total_emitted,
                    "reduce_credits_banked": seen,
                    "outstanding": thread.total_emitted - seen,
                    "poll_rounds": thread.poll_rounds,
                })
    return {
        "reduce_credits_by_job": credits,
        "live_masters": masters,
    }


def ensure_registered(runtime: UpDownRuntime) -> None:
    """Register the KVMSR framework threads with a runtime's program,
    and (once per runtime) hook KVMSR's liveness observability into the
    simulator: the quiescence-poll labels are marked idle for the
    watchdog, and stall dumps gain per-job reduce-credit accounting."""
    for cls in _FRAMEWORK_CLASSES:
        runtime.register(cls)
    if not getattr(runtime, "_kvmsr_observability", False):
        runtime._kvmsr_observability = True  # type: ignore[attr-defined]
        sim = runtime.sim
        sim.mark_idle_labels(_IDLE_POLL_LABELS)
        sim.add_diagnostic_provider("kvmsr_credits", _credit_diagnostics)
