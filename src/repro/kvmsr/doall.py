"""do_all: flat data parallelism on top of KVMSR (paper Table 5: 33 LoC).

Many AGILE kernels (Table 3) use KVMSR "indirectly" through ``doAll``: run
a body once per key, with the reduction providing only synchronization.
``make_do_all`` builds the one-off :class:`MapTask` subclass and job.
"""

from __future__ import annotations

import itertools
from typing import Callable, Optional

from repro.udweave.context import LaneContext
from repro.udweave.runtime import UpDownRuntime

from .binding import LaneSet, MapBinding
from .engine import KVMSRJob, MapTask
from .iterator import RangeInput

_counter = itertools.count()


def make_do_all(
    runtime: UpDownRuntime,
    n_keys: int,
    body: Callable[[LaneContext, int], None],
    name: Optional[str] = None,
    lanes: Optional[LaneSet] = None,
    map_binding: Optional[MapBinding] = None,
    max_inflight: int = 64,
) -> KVMSRJob:
    """A KVMSR job that runs ``body(ctx, key)`` for every key in ``0..n-1``.

    The body must be synchronous (single-activation); charge its compute
    with ``ctx.work``.  Completion is signaled through the job's
    continuation like any KVMSR invocation.
    """
    cls_name = name or f"DoAll{next(_counter)}"

    def kv_map(self, ctx: LaneContext, key, *values) -> None:
        body(ctx, key)
        self.kv_map_return(ctx)

    worker = type(cls_name, (MapTask,), {"kv_map": kv_map})
    return KVMSRJob(
        runtime,
        map_cls=worker,
        input_spec=RangeInput(n_keys),
        lanes=lanes,
        map_binding=map_binding,
        max_inflight=max_inflight,
        name=cls_name,
    )
