"""The parallel iterator abstraction: how KVMSR feeds keys to map tasks.

Paper §2.3: "The kvmap keys are produced by a parallel iterator
abstraction, of which appropriate start points in the kvmap are passed to
each lane in the KVMSR set."

Three input shapes cover the paper's applications:

* :class:`RangeInput` — keys are ``0..n-1`` and the map task fetches
  whatever it needs from global memory itself (PageRank over vertex IDs);
* :class:`ArrayInput` — the kvmap is an array in global memory;
  the map task DRAM-reads ``stride_words`` words per key before running
  ``kv_map`` (the vertex-struct style of Listing 3), charging the memory
  traffic of reading the input map;
* :class:`ListInput` — host-resident explicit ``(key, values)`` pairs
  delivered through the spawn message (used by small examples such as
  word count).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Sequence, Tuple

from repro.memmodel.drammalloc import Region


class InputSpec:
    """Base class for kvmap inputs; ``n_keys`` is the parallelism."""

    @property
    def n_keys(self) -> int:
        raise NotImplementedError


@dataclass(frozen=True)
class RangeInput(InputSpec):
    """Keys ``0..n-1``; values are fetched by the map task itself."""

    n: int

    def __post_init__(self) -> None:
        if self.n < 0:
            raise ValueError("key count cannot be negative")

    @property
    def n_keys(self) -> int:
        return self.n


@dataclass(frozen=True)
class ArrayInput(InputSpec):
    """Keys index a global-memory array of fixed-stride records.

    Key ``k``'s record occupies words ``[k*stride, (k+1)*stride)`` of
    ``region``; the framework reads it split-phase (in chunks of at most 8
    words) and passes the words to ``kv_map`` as values.
    """

    region: Region
    stride_words: int
    n: int

    def __post_init__(self) -> None:
        if self.stride_words < 1:
            raise ValueError("stride must be at least one word")
        if self.n < 0:
            raise ValueError("key count cannot be negative")
        if self.n * self.stride_words > self.region.nwords:
            raise ValueError(
                f"{self.n} records of {self.stride_words} words overrun "
                f"region {self.region.name!r}"
            )

    @property
    def n_keys(self) -> int:
        return self.n

    def record_addr(self, key: int) -> int:
        return self.region.addr(key * self.stride_words)


class ListInput(InputSpec):
    """Host-resident kvmap: explicit ``(key, values)`` pairs."""

    def __init__(self, pairs: Sequence[Tuple[Any, Tuple[Any, ...]]]) -> None:
        self.pairs: List[Tuple[Any, Tuple[Any, ...]]] = list(pairs)

    @property
    def n_keys(self) -> int:
        return len(self.pairs)

    def pair(self, index: int) -> Tuple[Any, Tuple[Any, ...]]:
        return self.pairs[index]
