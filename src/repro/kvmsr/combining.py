"""Combining cache: the software fetch&add of the paper (Table 5: 232 LoC).

Footnote 1 of the paper: *"The fetch-n-add() operation is implemented in
UDWeave; it is not a hardware primitive.  The implementation caches the
value in the scratchpad for high performance and provides atomicity."*

Atomicity comes for free from the execution model: all updates for a key
are routed (by the reduce binding) to a single owner lane, and events on a
lane execute serially.  The cache therefore keeps per-key accumulators in
the owner lane's scratchpad and drains them to global memory once, at the
job's flush phase — turning per-edge DRAM read-modify-writes into one
write per distinct key per lane.
"""

from __future__ import annotations

from typing import Any, Callable, List, Tuple

from repro.memmodel.drammalloc import Region
from repro.udweave.context import LaneContext


class CombiningCache:
    """A named, lane-scratchpad-resident accumulation cache."""

    def __init__(self, name: str) -> None:
        self.name = name

    def _val_key(self, key) -> tuple:
        return ("cc", self.name, key)

    def _keys_key(self) -> tuple:
        return ("cck", self.name)

    # -- update -----------------------------------------------------------

    def add(self, ctx: LaneContext, key, delta) -> None:
        """fetch&add: accumulate ``delta`` into ``key``'s cached value.

        Scratchpad traffic is open-coded (charges identical to the
        ``sp_read``/``sp_write``/``work`` calls it replaces, in the same
        order): one add runs per emitted tuple machine-wide, so the
        five-call fan-out was pure dispatch overhead.
        """
        if ctx.__class__ is not LaneContext:
            # IR lowering: a proven composite intrinsic (CC_ADD) — the
            # generated batch executor reproduces both arms, their
            # charge order, and the per-key float accumulation order.
            ctx.op_cc_add(self, key, delta)
            return
        vk = ("cc", self.name, key)
        sp = ctx.lane.scratchpad
        sp_cost = ctx.costs.scratchpad_access
        ctx.cycles += sp_cost
        current = sp.get(vk)
        if current is None:
            kk = ("cck", self.name)
            ctx.cycles += sp_cost
            keys: List[Any] = sp.get(kk)
            if keys is None:
                keys = []
            keys.append(key)
            ctx.cycles += sp_cost
            sp[kk] = keys
            ctx.cycles += sp_cost
            sp[vk] = delta
            ctx.cycles += 2 * ctx.costs.instruction  # miss: insert + append
        else:
            ctx.cycles += sp_cost
            sp[vk] = current + delta
            ctx.cycles += 1 * ctx.costs.instruction  # hit: one add

    def get(self, ctx: LaneContext, key, default=None):
        return ctx.sp_read(self._val_key(key), default)

    def resident_keys(self, ctx: LaneContext) -> Tuple[Any, ...]:
        return tuple(ctx.sp_read(self._keys_key(), ()) or ())

    # -- drain -----------------------------------------------------------

    def flush(
        self,
        ctx: LaneContext,
        write: Callable[[LaneContext, Any, Any], None],
    ) -> int:
        """Drain every cached entry through ``write(ctx, key, value)``;
        clears the cache.  Returns the number of entries drained."""
        keys = ctx.sp_read(self._keys_key(), None)
        if not keys:
            ctx.sp_write(self._keys_key(), [])
            return 0
        count = 0
        for key in keys:
            vk = self._val_key(key)
            value = ctx.sp_read(vk)
            write(ctx, key, value)
            # Free the slot outright — a None tombstone would keep the
            # drained entry occupying scratchpad across epochs.
            ctx.sp_delete(vk)
            count += 1
        ctx.sp_write(self._keys_key(), [])
        return count

    def flush_to_region(
        self,
        ctx: LaneContext,
        region: Region,
        index_of: Callable[[Any], int] = lambda k: k,
        accumulate: bool = False,
    ) -> int:
        """Drain to a global-memory region: entry ``key`` goes to word
        ``index_of(key)``.  ``accumulate=True`` adds to the stored value
        (needed when several epochs flush into the same array)."""

        def write(c: LaneContext, key, value) -> None:
            idx = index_of(key)
            if accumulate:
                # Read-modify-write: the stored value comes from DRAM and
                # is charged as such (stall + channel occupancy), not
                # peeked host-side for free.
                value = value + c.dram_read_blocking(region.addr(idx), 1)[0]
            c.send_dram_write(region.addr(idx), [value])

        return self.flush(ctx, write)
