"""Multi-producer / multi-consumer queue — a §2.2 shared data abstraction.

A distributed queue of ``n_segments`` lane-local segments.  Producers
enqueue to a segment chosen by a round-robin ticket (spread for balance);
consumers dequeue by asking a segment's owner lane, which replies with an
item or "empty".  Owner-lane event serialization makes each segment a
race-free deque with no locks, the same discipline as the SHT.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.kvmsr.binding import splitmix64
from repro.udweave import UDThread, UpDownRuntime, event
from repro.udweave.context import LaneContext


class QueueOp(UDThread):
    """One queue operation on a segment's owner lane."""

    @event
    def enqueue(self, ctx, qname, item):
        q = MPMCQueue.named(ctx.runtime, qname)
        seg = q._segment(ctx)
        seg.append(item)
        ctx.work(2)
        ctx.send_reply(1)
        ctx.yield_terminate()

    @event
    def dequeue(self, ctx, qname):
        q = MPMCQueue.named(ctx.runtime, qname)
        seg = q._segment(ctx)
        ctx.work(2)
        if seg:
            ctx.send_reply(1, seg.popleft())
        else:
            ctx.send_reply(0)
        ctx.yield_terminate()


class MPMCQueue:
    """Host-side descriptor for one distributed queue."""

    def __init__(
        self,
        runtime: UpDownRuntime,
        name: str,
        first_lane: int = 0,
        n_segments: Optional[int] = None,
    ) -> None:
        self.runtime = runtime
        self.name = name
        self.first_lane = first_lane
        self.n_segments = n_segments or runtime.config.total_lanes
        if first_lane + self.n_segments > runtime.config.total_lanes:
            raise ValueError(
                f"queue segments [{first_lane}, "
                f"{first_lane + self.n_segments}) exceed the machine's "
                f"{runtime.config.total_lanes} lanes"
            )
        runtime.register(QueueOp)
        queues = getattr(runtime, "_mpmc_queues", None)
        if queues is None:
            queues = {}
            runtime._mpmc_queues = queues  # type: ignore[attr-defined]
        if name in queues:
            raise ValueError(f"queue name {name!r} already in use")
        queues[name] = self

    @staticmethod
    def named(runtime: UpDownRuntime, name: str) -> "MPMCQueue":
        return runtime._mpmc_queues[name]  # type: ignore[attr-defined]

    def _lane_for_ticket(self, ticket: int) -> int:
        return self.first_lane + splitmix64(ticket) % self.n_segments

    def _segment(self, ctx: LaneContext) -> deque:
        key = ("mpmc", self.name)
        seg = ctx.sp_read(key)
        if seg is None:
            seg = deque()
            ctx.sp_write(key, seg)
        return seg

    # -- device-side API ----------------------------------------------------

    def enqueue_from(self, ctx: LaneContext, item, ticket: int, cont=None) -> None:
        """Enqueue ``item``; ``ticket`` spreads producers across segments
        (any counter works — monotone per producer is typical)."""
        ctx.spawn(
            self._lane_for_ticket(ticket), "QueueOp::enqueue", self.name,
            item, cont=cont,
        )

    def dequeue_from(self, ctx: LaneContext, ticket: int, cont) -> None:
        """Ask a segment for an item; reply ``(1, item)`` or ``(0,)``."""
        ctx.spawn(
            self._lane_for_ticket(ticket), "QueueOp::dequeue", self.name,
            cont=cont,
        )

    # -- host-side verification ---------------------------------------------

    def snapshot(self) -> list:
        items = []
        for lane in range(self.first_lane, self.first_lane + self.n_segments):
            ln = self.runtime.sim._lanes.get(lane)
            if ln is None:
                continue
            seg = ln.scratchpad.get(("mpmc", self.name))
            if seg:
                items.extend(seg)
        return items

    def __len__(self) -> int:
        return len(self.snapshot())
