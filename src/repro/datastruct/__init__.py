"""Scalable data abstractions over shared global state (paper §2.2, Table 3).

The paper's examples of "shared global data structures … from mutable
arrays to scalable data abstractions": the scalable hash table, the
parallel graph abstraction built on two SHTs, MPMC queues, SHMEM-style
symmetric regions, the global sort, and histogram bins.
"""

from .histogram import HistogramApp, HistogramResult
from .pgraph import ParallelGraph
from .queues import MPMCQueue
from .sht import ScalableHashTable, SHTError
from .shmem import SymmetricRegion, barrier, broadcast, sum_reduce
from .sort import GlobalSortApp, SortResult

__all__ = [
    "ScalableHashTable",
    "SHTError",
    "ParallelGraph",
    "MPMCQueue",
    "SymmetricRegion",
    "sum_reduce",
    "broadcast",
    "barrier",
    "GlobalSortApp",
    "SortResult",
    "HistogramApp",
    "HistogramResult",
]
