"""Histogram bins: the §2.2 example of a shared mutable abstraction.

A KVMSR job over a values array: map tasks emit ``<bin, 1>`` per value,
reduces accumulate through the combining cache, and the flush drains the
per-lane bin counters into a counts region.  Bin semantics match
``numpy.histogram`` with uniform bins over ``[lo, hi]`` (right-inclusive
last bin), which is what the validation tests compare against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.kvmsr import (
    ArrayInput,
    CombiningCache,
    KVMSRJob,
    MapTask,
    ReduceTask,
    job_of,
)
from repro.machine.stats import SimStats
from repro.udweave import UpDownRuntime


class HistMapTask(MapTask):
    def kv_map(self, ctx, key, value):
        app = self.job(ctx).payload
        ctx.work(3)  # subtract, scale, clamp
        self.kv_emit(ctx, app.bin_of(value), 1)
        self.kv_map_return(ctx)


class HistReduceTask(ReduceTask):
    def kv_reduce(self, ctx, bin_id, one):
        app = self.job(ctx).payload
        app.cache.add(ctx, bin_id, one)
        self.kv_reduce_return(ctx)

    def kv_flush(self, ctx):
        app = self.job(ctx).payload
        drained = app.cache.flush_to_region(ctx, app.counts_region)
        self.kv_flush_return(ctx, drained)


@dataclass
class HistogramResult:
    counts: np.ndarray
    edges: np.ndarray
    elapsed_seconds: float
    stats: SimStats


class HistogramApp:
    """Bin a global-memory values array into ``nbins`` uniform bins."""

    def __init__(
        self,
        runtime: UpDownRuntime,
        values: np.ndarray,
        nbins: int,
        lo: Optional[float] = None,
        hi: Optional[float] = None,
        block_size: int = 4096,
    ) -> None:
        values = np.asarray(values, dtype=np.int64)
        if len(values) == 0:
            raise ValueError("cannot histogram an empty array")
        if nbins < 1:
            raise ValueError("need at least one bin")
        self.runtime = runtime
        self.nbins = nbins
        self.lo = int(values.min() if lo is None else lo)
        self.hi = int(values.max() if hi is None else hi)
        if self.hi <= self.lo:
            self.hi = self.lo + 1
        gm = runtime.gmem
        self.values_region = gm.dram_malloc(
            len(values) * 8, block_size=block_size, name=f"hist_vals{id(self) & 0xffff}"
        )
        self.values_region[:] = values
        self.counts_region = gm.dram_malloc(
            nbins * 8, block_size=block_size, name=f"hist_counts{id(self) & 0xffff}"
        )
        self.job = KVMSRJob(
            runtime,
            HistMapTask,
            ArrayInput(self.values_region, 1, len(values)),
            reduce_cls=HistReduceTask,
            payload=self,
            name="histogram",
        )
        self.cache = CombiningCache(f"hist{self.job.job_id}")

    def bin_of(self, value: int) -> int:
        """numpy.histogram-compatible uniform binning."""
        span = self.hi - self.lo
        b = (value - self.lo) * self.nbins // span
        return min(max(b, 0), self.nbins - 1)

    def run(self, max_events: Optional[int] = None) -> HistogramResult:
        rt = self.runtime
        self.job.launch(cont_tag="hist_done")
        stats = rt.run(max_events=max_events)
        if not rt.host_messages("hist_done"):
            raise RuntimeError("histogram did not complete")
        edges = np.linspace(self.lo, self.hi, self.nbins + 1)
        return HistogramResult(
            counts=self.counts_region.data.copy(),
            edges=edges,
            elapsed_seconds=rt.elapsed_seconds,
            stats=stats,
        )
