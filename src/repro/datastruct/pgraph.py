"""Parallel Graph Abstraction: a mutable distributed graph on two SHTs.

Paper Table 5 lists it at 170 LoC — thin glue over two scalable hash
tables (vertices and edges), which is exactly what this is.  Used by the
ingestion pipeline (streaming inserts with fine-grained "locking" via
owner-lane serialization, §2.2) and partial match.

With ``adjacency=True`` each edge insert also appends the destination to
the source's adjacency list, kept on the source vertex's owner lane —
the index multihop queries traverse.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from repro.udweave import UDThread, UpDownRuntime, event
from repro.udweave.context import LaneContext

from .sht import ScalableHashTable


class PGAAdjOp(UDThread):
    """Adjacency maintenance + queries on a vertex's owner lane."""

    @event
    def append(self, ctx, pg_name, src, dst):
        key = ("pga_adj", pg_name, src)
        adj: List[int] = ctx.sp_read(key, None) or []
        adj.append(dst)
        ctx.sp_write(key, adj)
        ctx.work(2)
        ctx.send_reply(1)
        ctx.yield_terminate()

    @event
    def neighbors(self, ctx, pg_name, vid, tag):
        adj = tuple(ctx.sp_read(("pga_adj", pg_name, vid), ()) or ())
        ctx.work(1 + len(adj))
        head = () if tag is None else (tag,)
        ctx.send_reply(*head, *adj)
        ctx.yield_terminate()


class ParallelGraph:
    """Distributed vertex + edge store with streaming insert."""

    def __init__(
        self,
        runtime: UpDownRuntime,
        name: str = "pgraph",
        vertex_value_words: int = 4,
        edge_value_words: int = 8,
        vertex_buckets_per_lane: int = 256,
        vertex_entries_per_bucket: int = 16,
        edge_buckets_per_lane: int = 256,
        edge_entries_per_bucket: int = 64,
        adjacency: bool = False,
    ) -> None:
        self.runtime = runtime
        self.name = name
        self.adjacency = adjacency
        self.vertices = ScalableHashTable(
            runtime,
            f"{name}_v",
            value_words=vertex_value_words,
            buckets_per_lane=vertex_buckets_per_lane,
            entries_per_bucket=vertex_entries_per_bucket,
        )
        self.edges = ScalableHashTable(
            runtime,
            f"{name}_e",
            value_words=edge_value_words,
            buckets_per_lane=edge_buckets_per_lane,
            entries_per_bucket=edge_entries_per_bucket,
        )
        runtime.register(PGAAdjOp)

    # ------------------------------------------------------------------
    # Device-side streaming inserts
    # ------------------------------------------------------------------

    def insert_vertex_from(
        self, ctx: LaneContext, vid, props=(), cont=None
    ) -> None:
        """Upsert a vertex (streaming input revisits endpoints freely)."""
        self.vertices.update_from(ctx, vid, props, cont=cont)

    def insert_edge_from(
        self, ctx: LaneContext, src, dst, props=(), cont=None
    ) -> None:
        """Upsert an edge record keyed by ``(src, dst)``; with adjacency
        enabled, also index it on the source's owner lane."""
        self.edges.update_from(ctx, (src, dst), props, cont=cont)
        if self.adjacency:
            ctx.spawn(
                self.vertices.owner_lane(src),
                "PGAAdjOp::append",
                self.name,
                src,
                dst,
            )

    def neighbors_from(self, ctx: LaneContext, vid, cont, tag=None) -> None:
        """Query ``vid``'s adjacency; the reply's operands are the
        neighbor IDs (prefixed by ``tag`` when given)."""
        if not self.adjacency:
            raise RuntimeError(
                f"parallel graph {self.name!r} was built without adjacency"
            )
        ctx.spawn(
            self.vertices.owner_lane(vid),
            "PGAAdjOp::neighbors",
            self.name,
            vid,
            tag,
            cont=cont,
        )

    def lookup_edge_from(self, ctx: LaneContext, src, dst, cont) -> None:
        self.edges.lookup_from(ctx, (src, dst), cont)

    def lookup_vertex_from(self, ctx: LaneContext, vid, cont) -> None:
        self.vertices.lookup_from(ctx, vid, cont)

    # ------------------------------------------------------------------
    # Host-side verification
    # ------------------------------------------------------------------

    def snapshot(self) -> Tuple[Dict[Any, tuple], Dict[Any, tuple]]:
        """(vertices, edges) as host dictionaries."""
        return self.vertices.snapshot(), self.edges.snapshot()

    @property
    def n_vertices(self) -> int:
        return len(self.vertices)

    @property
    def n_edges(self) -> int:
        return len(self.edges)

    def snapshot_adjacency(self) -> Dict[int, List[int]]:
        """Host-side view of the adjacency index."""
        out: Dict[int, List[int]] = {}
        for lane_obj in self.runtime.sim._lanes.values():
            for key, adj in lane_obj.scratchpad.items():
                if (
                    isinstance(key, tuple)
                    and len(key) == 3
                    and key[0] == "pga_adj"
                    and key[1] == self.name
                ):
                    out[key[2]] = list(adj)
        return out
