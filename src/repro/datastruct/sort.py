"""Scalable Global Sort (paper Table 5: 158 LoC) — two KVMSR phases.

Distribution sort in the KVMSR idiom:

1. **Count**: map over the input array, emit ``<bucket, 1>``; reduces
   accumulate per-bucket counts (combining cache) and flush them to a
   counts region.
2. Host (TOP-core) step: exclusive prefix sum over the counts gives each
   bucket its output offset — the artifact's host programs do exactly this
   kind of inter-phase glue.
3. **Scatter**: map over the input again, emit ``<bucket, value>``;
   each bucket's owner lane buffers its values in scratchpad, then at
   flush sorts the bucket locally (``k log k`` charged) and writes it to
   its output slice.

Buckets partition the value range uniformly; the Hash reduce binding
spreads buckets over lanes.  The output is globally sorted because bucket
ranges are ordered and each bucket is sorted locally.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import log2
from typing import Optional

import numpy as np

from repro.kvmsr import (
    ArrayInput,
    CombiningCache,
    KVMSRJob,
    MapTask,
    ReduceTask,
    job_of,
)
from repro.machine.stats import SimStats
from repro.udweave import UpDownRuntime


class SortCountTask(MapTask):
    def kv_map(self, ctx, key, value):
        app = self.job(ctx).payload
        ctx.work(3)
        self.kv_emit(ctx, app.bucket_of(value), 1)
        self.kv_map_return(ctx)


class SortCountReduce(ReduceTask):
    def kv_reduce(self, ctx, bucket, one):
        app = self.job(ctx).payload
        app.cache.add(ctx, bucket, one)
        self.kv_reduce_return(ctx)

    def kv_flush(self, ctx):
        app = self.job(ctx).payload
        drained = app.cache.flush_to_region(ctx, app.counts_region)
        self.kv_flush_return(ctx, drained)


class SortScatterTask(MapTask):
    def kv_map(self, ctx, key, value):
        app = self.job(ctx).payload
        ctx.work(3)
        self.kv_emit(ctx, app.bucket_of(value), value)
        self.kv_map_return(ctx)


class SortScatterReduce(ReduceTask):
    def kv_reduce(self, ctx, bucket, value):
        app = self.job(ctx).payload
        key = ("sortb", app.uid, bucket)
        items = ctx.sp_read(key)
        if items is None:
            items = []
            owned = ctx.sp_read(("sortk", app.uid), None)
            if owned is None:
                owned = []
            owned.append(bucket)
            ctx.sp_write(("sortk", app.uid), owned)
        items.append(value)
        ctx.sp_write(key, items)
        ctx.work(2)
        self.kv_reduce_return(ctx)

    def kv_flush(self, ctx):
        app = self.job(ctx).payload
        owned = ctx.sp_read(("sortk", app.uid), None) or []
        written = 0
        for bucket in owned:
            items = ctx.sp_read(("sortb", app.uid, bucket)) or []
            items.sort()
            k = len(items)
            ctx.work(int(k * max(1.0, log2(max(k, 2)))))
            base = app.offsets[bucket]
            for i in range(0, k, 8):
                chunk = items[i : i + 8]
                ctx.send_dram_write(
                    app.output_region.addr(base + i), chunk
                )
            written += k
            ctx.sp_write(("sortb", app.uid, bucket), None)
        ctx.sp_write(("sortk", app.uid), [])
        self.kv_flush_return(ctx, written)


@dataclass
class SortResult:
    output: np.ndarray
    elapsed_seconds: float
    stats: SimStats


class GlobalSortApp:
    """Sort a host array of int64 on the simulated machine."""

    def __init__(
        self,
        runtime: UpDownRuntime,
        values: np.ndarray,
        nbuckets: Optional[int] = None,
        block_size: int = 4096,
    ) -> None:
        values = np.asarray(values, dtype=np.int64)
        if len(values) == 0:
            raise ValueError("cannot sort an empty array")
        self.runtime = runtime
        self.n = len(values)
        self.nbuckets = nbuckets or max(4, runtime.config.total_lanes)
        self.lo = int(values.min())
        self.hi = int(values.max()) + 1
        gm = runtime.gmem
        uid = id(self) & 0xFFFF
        self.input_region = gm.dram_malloc(
            self.n * 8, block_size=block_size, name=f"sort_in{uid}"
        )
        self.input_region[:] = values
        self.output_region = gm.dram_malloc(
            self.n * 8, block_size=block_size, name=f"sort_out{uid}"
        )
        self.counts_region = gm.dram_malloc(
            self.nbuckets * 8, block_size=block_size, name=f"sort_cnt{uid}"
        )
        self.count_job = KVMSRJob(
            runtime,
            SortCountTask,
            ArrayInput(self.input_region, 1, self.n),
            reduce_cls=SortCountReduce,
            payload=self,
            name="sort_count",
        )
        self.scatter_job = KVMSRJob(
            runtime,
            SortScatterTask,
            ArrayInput(self.input_region, 1, self.n),
            reduce_cls=SortScatterReduce,
            payload=self,
            name="sort_scatter",
        )
        self.cache = CombiningCache(f"sort{self.count_job.job_id}")
        self.uid = self.count_job.job_id
        self.offsets: Optional[np.ndarray] = None

    def bucket_of(self, value: int) -> int:
        span = self.hi - self.lo
        b = (value - self.lo) * self.nbuckets // span
        return min(max(b, 0), self.nbuckets - 1)

    def run(self, max_events: Optional[int] = None) -> SortResult:
        rt = self.runtime
        self.count_job.launch(cont_tag="sort_count_done")
        stats1 = rt.run(max_events=max_events)
        if not rt.host_messages("sort_count_done"):
            raise RuntimeError("sort count phase did not complete")
        counts = self.counts_region.data
        self.offsets = np.concatenate([[0], np.cumsum(counts)[:-1]]).astype(
            np.int64
        )
        self.scatter_job.launch(cont_tag="sort_scatter_done")
        stats2 = rt.run(max_events=max_events)
        if not rt.host_messages("sort_scatter_done"):
            raise RuntimeError("sort scatter phase did not complete")
        return SortResult(
            output=self.output_region.data.copy(),
            elapsed_seconds=rt.elapsed_seconds,
            stats=stats2,
        )
