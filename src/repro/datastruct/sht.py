"""Scalable Hash Table (SHT) — the paper's workhorse abstraction.

Table 5 lists the UDWeave SHT at 4,764 LoC; it underpins the parallel
graph abstraction, ingestion, and partial match.  Keys hash to an *owner
lane*; all operations on a key are events on that lane, so they serialize
without locks (the same ownership discipline KVMSR's reduce binding uses).
Entry payloads are persisted to a DRAM region (charged through the memory
model); the bucket index lives in the owner lane's scratchpad.

Configuration mirrors the artifact's ingestion config files: buckets per
lane and entries per bucket bound the capacity
(``NUM_PGA_LANES / VERTEX_EB / VERTEX_BL`` in Listing 14).

Operations are exposed two ways:

* device-side, from any event handler: :meth:`ScalableHashTable.insert_from`,
  :meth:`lookup_from`, :meth:`update_from`, :meth:`remove_from` — each
  spawns an op event on the owner lane; replies go to a continuation.
* host-side, for tests and verification: :meth:`snapshot` reads the
  table back without charging simulated time.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.kvmsr.binding import stable_hash
from repro.udweave import UDThread, UpDownRuntime, event
from repro.udweave.context import LaneContext


class SHTError(RuntimeError):
    """Capacity exhaustion or misuse of a scalable hash table."""


class SHTOp(UDThread):
    """One hash-table operation, executing on the key's owner lane."""

    @event
    def insert(self, ctx, table_name, key, values):
        table = ScalableHashTable.named(ctx.runtime, table_name)
        table._do_insert(ctx, key, values, overwrite=False)
        ctx.send_reply(1)
        ctx.yield_terminate()

    @event
    def update(self, ctx, table_name, key, values):
        table = ScalableHashTable.named(ctx.runtime, table_name)
        table._do_insert(ctx, key, values, overwrite=True)
        ctx.send_reply(1)
        ctx.yield_terminate()

    @event
    def lookup(self, ctx, table_name, key, tag):
        table = ScalableHashTable.named(ctx.runtime, table_name)
        values = table._do_lookup(ctx, key)
        head = () if tag is None else (tag,)
        if values is None:
            ctx.send_reply(*head, 0)
        else:
            ctx.send_reply(*head, 1, *values)
        ctx.yield_terminate()

    @event
    def remove(self, ctx, table_name, key):
        table = ScalableHashTable.named(ctx.runtime, table_name)
        removed = table._do_remove(ctx, key)
        ctx.send_reply(1 if removed else 0)
        ctx.yield_terminate()


class ScalableHashTable:
    """Host-side descriptor + device-side operations for one SHT."""

    def __init__(
        self,
        runtime: UpDownRuntime,
        name: str,
        value_words: int = 8,
        buckets_per_lane: int = 256,
        entries_per_bucket: int = 16,
        first_lane: int = 0,
        num_lanes: Optional[int] = None,
        mem_nodes: Optional[int] = None,
        block_size: int = 4096,
    ) -> None:
        if value_words < 1:
            raise SHTError("values must occupy at least one word")
        self.runtime = runtime
        self.name = name
        self.value_words = value_words
        self.buckets_per_lane = buckets_per_lane
        self.entries_per_bucket = entries_per_bucket
        self.first_lane = first_lane
        self.num_lanes = num_lanes or runtime.config.total_lanes
        if first_lane + self.num_lanes > runtime.config.total_lanes:
            raise SHTError(
                f"SHT lanes [{first_lane}, {first_lane + self.num_lanes}) "
                f"exceed the machine's {runtime.config.total_lanes} lanes"
            )
        self.capacity_per_lane = buckets_per_lane * entries_per_bucket
        tables = getattr(runtime, "_sht_tables", None)
        if tables is None:
            tables = {}
            runtime._sht_tables = tables  # type: ignore[attr-defined]
        if name in tables:
            raise SHTError(f"SHT name {name!r} already in use")
        if mem_nodes is None:
            mem_nodes = 1 << (runtime.config.nodes.bit_length() - 1)
        self.backing = runtime.gmem.dram_malloc(
            self.num_lanes * self.capacity_per_lane * value_words * 8,
            0,
            mem_nodes,
            block_size,
            name=f"sht_{name}",
        )
        runtime.register(SHTOp)
        tables[name] = self

    @staticmethod
    def named(runtime: UpDownRuntime, name: str) -> "ScalableHashTable":
        try:
            return runtime._sht_tables[name]  # type: ignore[attr-defined]
        except (AttributeError, KeyError):
            raise SHTError(f"no SHT named {name!r}") from None

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------

    def owner_lane(self, key) -> int:
        return self.first_lane + stable_hash(("sht", self.name, key)) % self.num_lanes

    def bucket_of(self, key) -> int:
        return stable_hash((self.name, key, "b")) % self.buckets_per_lane

    # ------------------------------------------------------------------
    # Device-side API (call from any event handler)
    # ------------------------------------------------------------------

    def insert_from(self, ctx: LaneContext, key, values=(), cont=None) -> None:
        """Insert ``key -> values``; duplicate keys raise.  The optional
        continuation receives ``(1,)`` when the insert lands."""
        ctx.spawn(self.owner_lane(key), "SHTOp::insert", self.name, key,
                  tuple(values), cont=cont)

    def update_from(self, ctx: LaneContext, key, values=(), cont=None) -> None:
        """Insert-or-overwrite (upsert)."""
        ctx.spawn(self.owner_lane(key), "SHTOp::update", self.name, key,
                  tuple(values), cont=cont)

    def lookup_from(self, ctx: LaneContext, key, cont, tag=None) -> None:
        """Reply is ``(1, *values)`` on hit, ``(0,)`` on miss; a non-None
        ``tag`` is prepended so callers with several outstanding lookups
        can tell the replies apart."""
        ctx.spawn(self.owner_lane(key), "SHTOp::lookup", self.name, key, tag,
                  cont=cont)

    def remove_from(self, ctx: LaneContext, key, cont=None) -> None:
        ctx.spawn(self.owner_lane(key), "SHTOp::remove", self.name, key,
                  cont=cont)

    # ------------------------------------------------------------------
    # Owner-lane internals (run inside SHTOp events)
    # ------------------------------------------------------------------

    def _index(self, ctx: LaneContext) -> Dict[Any, Tuple[int, Tuple[Any, ...]]]:
        key = ("sht", self.name)
        idx = ctx.sp_read(key)
        if idx is None:
            idx = {}
            ctx.sp_write(key, idx)
        return idx

    def _do_insert(self, ctx: LaneContext, key, values, overwrite: bool) -> None:
        values = tuple(values)
        if len(values) > self.value_words:
            raise SHTError(
                f"value of {len(values)} words exceeds table width "
                f"{self.value_words}"
            )
        idx = self._index(ctx)
        ctx.work(3)  # hash + bucket walk
        existing = idx.get(key)
        if existing is not None:
            if not overwrite:
                raise SHTError(f"duplicate key {key!r} in SHT {self.name!r}")
            slot = existing[0]
        else:
            used_key = ("shtn", self.name)
            used = ctx.sp_read(used_key, 0)
            if used >= self.capacity_per_lane:
                raise SHTError(
                    f"SHT {self.name!r} lane {ctx.network_id} is full "
                    f"({self.capacity_per_lane} entries)"
                )
            lane_index = ctx.network_id - self.first_lane
            slot = lane_index * self.capacity_per_lane + used
            ctx.sp_write(used_key, used + 1)
        idx[key] = (slot, values)
        ctx.sp_write(("sht", self.name), idx)
        if values:
            padded = list(values) + [0] * (self.value_words - len(values))
            ctx.send_dram_write(
                self.backing.addr(slot * self.value_words), padded
            )

    def _do_lookup(self, ctx: LaneContext, key):
        idx = self._index(ctx)
        ctx.work(3)
        entry = idx.get(key)
        return None if entry is None else entry[1]

    def _do_remove(self, ctx: LaneContext, key) -> bool:
        idx = self._index(ctx)
        ctx.work(3)
        if key in idx:
            del idx[key]
            ctx.sp_write(("sht", self.name), idx)
            return True
        return False

    # ------------------------------------------------------------------
    # Host-side verification
    # ------------------------------------------------------------------

    def snapshot(self) -> Dict[Any, Tuple[Any, ...]]:
        """All entries, read host-side (no simulated cost)."""
        out: Dict[Any, Tuple[Any, ...]] = {}
        for lane in range(self.first_lane, self.first_lane + self.num_lanes):
            ln = self.runtime.sim._lanes.get(lane)
            if ln is None:
                continue
            idx = ln.scratchpad.get(("sht", self.name))
            if idx:
                for key, (_slot, values) in idx.items():
                    out[key] = values
        return out

    def __len__(self) -> int:
        return len(self.snapshot())
