"""SHMEM-style library: put/get and reductions over symmetric regions.

Table 5 lists a 1,914-LoC SHMEM library (put/get, reductions) built on
UpDown's translation-supported data placement; Table 3 marks its KVMSR
integration "Future".  This rendering provides:

* symmetric allocation: one region striped so each node holds an equal
  contiguous slice (``DRAMmalloc(size, 0, nodes, size/nodes)``);
* device-side ``put`` / ``get`` against a (node, offset) coordinate —
  resolved through the same translation the apps use;
* ``sum_reduce``: a node-parallel KVMSR reduction whose total returns
  through the flush-phase value channel.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.kvmsr import KVMSRJob, MapTask, RangeInput, ReduceTask, job_of
from repro.machine.stats import SimStats
from repro.udweave import UpDownRuntime, event
from repro.udweave.context import LaneContext


def _next_pow2(x: int) -> int:
    return 1 << max(0, (x - 1).bit_length())


class SymmetricRegion:
    """A region with an equal, contiguous slice on every node."""

    def __init__(
        self,
        runtime: UpDownRuntime,
        name: str,
        words_per_node: int,
        dtype=np.int64,
    ) -> None:
        if words_per_node < 1:
            raise ValueError("need at least one word per node")
        self.runtime = runtime
        nodes = runtime.config.nodes
        self.words_per_node = words_per_node
        # pad the per-node slice up to a power-of-two block so the cyclic
        # layout lands slice k exactly on node k
        block = max(
            runtime.config.min_dram_block_bytes,
            _next_pow2(words_per_node * 8),
        )
        self.slice_words = block // 8
        nr = nodes if nodes & (nodes - 1) == 0 else _next_pow2(nodes) // 2
        self.region = runtime.gmem.dram_malloc(
            nodes * block, 0, max(1, nr), block, dtype=dtype,
            name=f"shmem_{name}",
        )

    def addr(self, node: int, offset: int) -> int:
        """Byte VA of word ``offset`` in ``node``'s symmetric slice."""
        if not (0 <= offset < self.words_per_node):
            raise ValueError(f"offset {offset} outside the symmetric slice")
        return self.region.addr(node * self.slice_words + offset)

    def index(self, node: int, offset: int) -> int:
        return node * self.slice_words + offset

    # -- device-side one-sided ops ----------------------------------------

    def put_from(self, ctx: LaneContext, node: int, offset: int, values) -> None:
        """One-sided write into another node's slice."""
        ctx.send_dram_write(self.addr(node, offset), list(values))

    def get_from(
        self, ctx: LaneContext, node: int, offset: int, nwords: int,
        return_label: str, tag=None,
    ) -> None:
        """One-sided split-phase read from another node's slice."""
        ctx.send_dram_read(self.addr(node, offset), nwords, return_label, tag=tag)

    # -- host access --------------------------------------------------------

    def host_view(self, node: int) -> np.ndarray:
        lo = node * self.slice_words
        return self.region.data[lo : lo + self.words_per_node]


class _SumTask(MapTask):
    """Per-node partial sum: reads one symmetric slice, emits the partial."""

    def kv_map(self, ctx, node):
        sym: SymmetricRegion = self.job(ctx).payload
        self._node = node
        self._left = -(-sym.words_per_node // 8)
        self._acc = 0
        for i in range(0, sym.words_per_node, 8):
            k = min(8, sym.words_per_node - i)
            ctx.send_dram_read(sym.addr(node, i), k, "got_words")
            ctx.work(1)
        ctx.yield_()

    @event
    def got_words(self, ctx, *words):
        self._acc += sum(words)
        ctx.work(len(words))
        self._left -= 1
        if self._left == 0:
            self.kv_emit(ctx, 0, self._acc)
            self.kv_map_return(ctx)
        else:
            ctx.yield_()


class _SumReduce(ReduceTask):
    """Folds partials on the owner lane; the flush value is the total."""

    def kv_reduce(self, ctx, key, partial):
        acc_key = ("shmem_sum", self._job_id)
        ctx.sp_write(acc_key, ctx.sp_read(acc_key, 0) + partial)
        ctx.work(1)
        self.kv_reduce_return(ctx)

    def kv_flush(self, ctx):
        acc_key = ("shmem_sum", self._job_id)
        total = ctx.sp_read(acc_key, 0)
        ctx.sp_write(acc_key, 0)
        self.kv_flush_return(ctx, total)


def sum_reduce(
    sym: SymmetricRegion, max_events: Optional[int] = None
) -> Tuple[int, SimStats]:
    """Globally sum a symmetric region's live words; returns (sum, stats).

    Drives one node-parallel KVMSR job to completion on the region's
    runtime, so call it between application phases, not concurrently.
    """
    rt = sym.runtime
    job = KVMSRJob(
        rt,
        _SumTask,
        RangeInput(rt.config.nodes),
        reduce_cls=_SumReduce,
        payload=sym,
        name=f"shmem_sum_{sym.region.name}",
    )
    job.launch(cont_tag="shmem_sum_done")
    stats = rt.run(max_events=max_events)
    done = rt.host_messages("shmem_sum_done")
    if not done:
        raise RuntimeError("sum_reduce did not complete")
    _tasks, _emitted, _polls, total = done[-1].operands
    return total, stats


class _BcastTask(MapTask):
    """Pull-style broadcast: each node copies the root's slice locally."""

    def kv_map(self, ctx, node):
        sym, root = self.job(ctx).payload
        if node == root:
            self.kv_map_return(ctx)
            return
        self._node = node
        self._left = -(-sym.words_per_node // 8)
        for i in range(0, sym.words_per_node, 8):
            k = min(8, sym.words_per_node - i)
            sym.get_from(ctx, root, i, k, "got_words", tag=i)
            ctx.work(1)
        ctx.yield_()

    @event
    def got_words(self, ctx, offset, *words):
        sym, _root = self.job(ctx).payload
        sym.put_from(ctx, self._node, offset, list(words))
        self._left -= 1
        if self._left == 0:
            self.kv_map_return(ctx)
        else:
            ctx.yield_()


def broadcast(
    sym: SymmetricRegion, root: int = 0, max_events: Optional[int] = None
) -> SimStats:
    """Copy ``root``'s slice into every node's slice (SHMEM broadcast)."""
    rt = sym.runtime
    if not (0 <= root < rt.config.nodes):
        raise ValueError(f"root node {root} out of range")
    job = KVMSRJob(
        rt,
        _BcastTask,
        RangeInput(rt.config.nodes),
        payload=(sym, root),
        name=f"shmem_bcast_{sym.region.name}",
    )
    job.launch(cont_tag="shmem_bcast_done")
    stats = rt.run(max_events=max_events)
    if not rt.host_messages("shmem_bcast_done"):
        raise RuntimeError("broadcast did not complete")
    return stats


def barrier(runtime: UpDownRuntime, max_events: Optional[int] = None) -> SimStats:
    """A machine-wide barrier: an empty per-node KVMSR round trip.

    The completion message is the barrier's release — on the real machine
    this is the hierarchical synchronization KVMSR already performs for
    every phase boundary."""
    from repro.kvmsr import make_do_all

    job = make_do_all(
        runtime, runtime.config.nodes, lambda ctx, node: ctx.work(1),
        name=f"shmem_barrier{id(runtime) & 0xffff}",
    )
    job.launch(cont_tag="shmem_barrier_done")
    stats = runtime.run(max_events=max_events)
    if not runtime.host_messages("shmem_barrier_done"):
        raise RuntimeError("barrier did not complete")
    return stats
