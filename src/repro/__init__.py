"""repro: a functional reproduction of KVMSR+UDWeave on the UpDown graph
supercomputer (Fell et al., SC Workshops '25).

Layers, bottom up:

* :mod:`repro.machine` — the UpDown machine as a cost-modeled DES
  (stands in for the authors' Fastsim);
* :mod:`repro.udweave` — the UDWeave programming model (threads, events,
  event words, continuations, split-phase DRAM);
* :mod:`repro.memmodel` — the global address space (swizzle translation
  descriptors, DRAMmalloc, spMalloc);
* :mod:`repro.kvmsr` — the KVMSR engine (Block/Hash/PBMW binding,
  termination detection, do_all, combining cache);
* :mod:`repro.datastruct` — scalable data abstractions (SHT, parallel
  graph, MPMC queue, SHMEM, global sort, histogram);
* :mod:`repro.graph` — host-side graph substrate (CSR, RMAT/ER/FF
  generators, vertex splitting, binary IO, dataset stand-ins);
* :mod:`repro.apps` — the paper's applications (PR, BFS, TC, ingestion,
  partial match, and the Table 3 extras);
* :mod:`repro.baselines` — CPU validation oracles;
* :mod:`repro.harness` — experiment runners and paper-style reports.

Quick start::

    from repro.machine import bench_machine
    from repro.udweave import UpDownRuntime
    from repro.apps import PageRankApp
    from repro.graph import rmat

    rt = UpDownRuntime(bench_machine(nodes=4))
    result = PageRankApp(rt, rmat(8, seed=48), max_degree=64).run()
    print(result.ranks[:5], result.giga_updates_per_second)
"""

__version__ = "1.0.0"
