"""WF2: the streaming graph-analytics workflow (artifact's wf2k1/wf2k4).

The AGILE WF2 pipeline the paper evaluates pieces of: **K1** parses a CSV
stream and constructs the graph (§5.2.4's ingestion), **K4** incrementally
matches registered patterns against the stream (partial match), and the
reasoning kernels answer multihop queries over the accumulated structure.
This module composes all three on one simulated machine and extracts the
per-phase timings the artifact's ``perflog.tsv`` records (Listing 21):
the ``UDKVMSR started / finished`` markers bracket each phase.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.apps.ingestion import IngestionApp
from repro.apps.multihop import MultihopApp
from repro.apps.partial_match import PartialMatchApp, Pattern
from repro.apps.tform import Record
from repro.machine.config import MachineConfig
from repro.udweave import UpDownRuntime


@dataclass
class WF2Report:
    """Per-phase outcome of one WF2 run."""

    records: int
    alerts: List[Tuple[int, int, int]]
    reached: Dict[int, int]
    phase_seconds: Dict[str, float]
    perflog: str

    def write_perflog(self, path) -> Path:
        path = Path(path)
        path.write_text(self.perflog + "\n")
        return path


class WF2Workflow:
    """Compose ingestion (K1), partial match (K4), and multihop reasoning
    on a single machine, with perflog-style phase timing."""

    def __init__(
        self,
        config: MachineConfig,
        patterns: Sequence[Pattern],
        seeds: Sequence[int],
        hops: int = 2,
        shards: int = 1,
        parallel: bool = False,
    ) -> None:
        self.config = config
        self.patterns = list(patterns)
        self.seeds = list(seeds)
        self.hops = hops
        self.shards = shards
        self.parallel = parallel

    def _runtime(self) -> UpDownRuntime:
        return UpDownRuntime(
            self.config, shards=self.shards, parallel=self.parallel
        )

    def run(
        self,
        records: Sequence[Record],
        gap_cycles: float = 5_000.0,
        max_events: Optional[int] = None,
    ) -> WF2Report:
        records = list(records)
        phase_seconds: Dict[str, float] = {}

        # --- K1: bulk ingestion of the historical stream ----------------
        rt = self._runtime()
        ingest = IngestionApp(rt, records, name="wf2k1", adjacency=True)
        ing_res = ingest.run(max_events=max_events)
        phase_seconds["k1_ingest"] = rt.udlog.seconds_between(
            "UDKVMSR started for wf2k1", "UDKVMSR finished for wf2k1"
        )

        # --- K4: live stream matched against the registered patterns ----
        rt2 = self._runtime()
        matcher = PartialMatchApp(rt2, self.patterns, name="wf2k4")
        pm_res = matcher.run_stream(
            records, gap_cycles=gap_cycles, max_events=max_events
        )
        phase_seconds["k4_match_mean_latency"] = pm_res.mean_latency_seconds

        # --- reasoning: multihop reachability over the ingested graph ---
        rt3 = self._runtime()
        reason = MultihopApp(rt3, records, name="wf2mh")
        reason.run_ingest(max_events=max_events)
        mh_res = reason.query(
            self.seeds, self.hops, max_events=max_events
        )
        phase_seconds["reasoning"] = mh_res.elapsed_seconds
        for runtime in (rt, rt2, rt3):
            runtime.shutdown()

        perflog = "\n".join(
            [
                rt.udlog.to_perflog_tsv(),
                rt2.udlog.to_perflog_tsv().split("\n", 1)[-1],
                rt3.udlog.to_perflog_tsv().split("\n", 1)[-1],
            ]
        )
        return WF2Report(
            records=ing_res.records,
            alerts=pm_res.alerts,
            reached=mh_res.reached,
            phase_seconds=phase_seconds,
            perflog=perflog,
        )
