"""AGILE-style workflows: multi-kernel compositions (paper Table 5's
WF1-WF4, §2.1.3's "composition of application phases")."""

from .wf2 import WF2Report, WF2Workflow

__all__ = ["WF2Workflow", "WF2Report"]
