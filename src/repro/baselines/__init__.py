"""CPU reference implementations: validation oracles and comparison points.

The paper compares UpDown against Perlmutter / EOS results; those machines
are unavailable, so the baselines here serve (a) as correctness oracles
for every UpDown application and (b) as the host-CPU reference point the
benchmark reports print alongside simulated-machine numbers.
"""

from .bfs import bfs, traversed_edges, validate_parents
from .pagerank import pagerank, pagerank_converged
from .triangle import triangle_count, triangle_count_intersect

__all__ = [
    "pagerank",
    "pagerank_converged",
    "bfs",
    "traversed_edges",
    "validate_parents",
    "triangle_count",
    "triangle_count_intersect",
]
