"""Reference PageRank (vectorized NumPy) — the validation oracle.

Semantics match the UpDown application exactly: push-based power
iteration, ``pr' = (1-d)/n + d * Σ_{v→u} pr[v]/deg(v)``, dangling vertices
contribute nothing (the paper's graphs are symmetrized, so dangling mass
is a non-issue; we keep the simple rule on both sides).
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph


def pagerank(
    graph: CSRGraph,
    iterations: int = 1,
    damping: float = 0.85,
    initial: np.ndarray | None = None,
) -> np.ndarray:
    """Run ``iterations`` synchronous push iterations; returns the ranks."""
    n = graph.n
    if n == 0:
        return np.zeros(0)
    pr = (
        np.full(n, 1.0 / n)
        if initial is None
        else np.asarray(initial, dtype=np.float64).copy()
    )
    degrees = graph.degrees
    src = np.repeat(np.arange(n, dtype=np.int64), degrees)
    for _ in range(iterations):
        contrib = np.zeros(n)
        nz = degrees > 0
        contrib[nz] = pr[nz] / degrees[nz]
        sums = np.bincount(
            graph.neighbors, weights=contrib[src], minlength=n
        )
        pr = (1.0 - damping) / n + damping * sums
    return pr


def pagerank_converged(
    graph: CSRGraph,
    damping: float = 0.85,
    tol: float = 1e-10,
    max_iterations: int = 200,
) -> np.ndarray:
    """Iterate to an L1 fixed point (used by convergence tests)."""
    pr = np.full(graph.n, 1.0 / max(graph.n, 1))
    for _ in range(max_iterations):
        nxt = pagerank(graph, 1, damping, pr)
        if np.abs(nxt - pr).sum() < tol:
            return nxt
        pr = nxt
    return pr
