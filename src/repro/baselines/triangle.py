"""Reference triangle counting — two independent oracles.

``triangle_count`` uses the sparse-matrix identity
``#triangles = trace(A³) / 6 = Σ (A·A ∘ A) / 6`` on the symmetrized simple
graph; ``triangle_count_intersect`` mirrors the UpDown algorithm's edge
enumeration (pairs with x > y, common neighbors z < y) so tests can check
both the answer and the counting convention.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.graph.csr import CSRGraph


def _adjacency(graph: CSRGraph) -> sp.csr_matrix:
    n = graph.n
    src = np.repeat(np.arange(n, dtype=np.int64), graph.degrees)
    a = sp.csr_matrix(
        (np.ones(graph.m, dtype=np.int64), (src, graph.neighbors)),
        shape=(n, n),
    )
    a = a.maximum(a.T)  # symmetrize
    a.setdiag(0)
    a.eliminate_zeros()
    a.data[:] = 1
    return a


def triangle_count(graph: CSRGraph) -> int:
    """Exact triangle count via ``Σ(A² ∘ A) / 6``."""
    a = _adjacency(graph)
    return int((a @ a).multiply(a).sum() // 6)


def triangle_count_intersect(graph: CSRGraph) -> int:
    """The UpDown convention: for every edge (x, y) with x > y, count
    common neighbors z with z < y.  Equals :func:`triangle_count` on
    simple symmetric graphs."""
    a = _adjacency(graph)
    indptr, indices = a.indptr, a.indices
    total = 0
    for x in range(a.shape[0]):
        nx = indices[indptr[x] : indptr[x + 1]]
        for y in nx[nx < x]:
            ny = indices[indptr[y] : indptr[y + 1]]
            total += int(np.intersect1d(nx[nx < y], ny[ny < y]).size)
    return total
