"""Reference BFS — the validation oracle for the UpDown push BFS."""

from __future__ import annotations

from collections import deque
from typing import Tuple

import numpy as np

from repro.graph.csr import CSRGraph


def bfs(graph: CSRGraph, root: int) -> Tuple[np.ndarray, np.ndarray]:
    """Distances and parents from ``root``; unreachable = -1.

    Parents are *a* valid BFS tree (the UpDown run may pick different
    parents for equal-distance ties; tests compare distances exactly and
    check the UpDown parents form a valid tree instead).
    """
    n = graph.n
    if not (0 <= root < n):
        raise ValueError(f"root {root} out of range for n={n}")
    dist = np.full(n, -1, dtype=np.int64)
    parent = np.full(n, -1, dtype=np.int64)
    dist[root] = 0
    parent[root] = root
    q = deque([root])
    while q:
        v = q.popleft()
        for u in graph.out_neighbors(v):
            u = int(u)
            if dist[u] < 0:
                dist[u] = dist[v] + 1
                parent[u] = v
                q.append(u)
    return dist, parent


def traversed_edges(graph: CSRGraph, dist: np.ndarray) -> int:
    """Edges examined by a push BFS: out-degrees of all reached vertices
    (the artifact's "traversed edges" counter)."""
    reached = dist >= 0
    return int(graph.degrees[reached].sum())


def validate_parents(
    graph: CSRGraph, root: int, dist: np.ndarray, parent: np.ndarray
) -> bool:
    """Check ``parent`` is a valid BFS tree for ``dist``."""
    n = graph.n
    for v in range(n):
        if dist[v] < 0:
            if parent[v] != -1:
                return False
            continue
        if v == root:
            if parent[v] != root or dist[v] != 0:
                return False
            continue
        p = int(parent[v])
        if not (0 <= p < n) or dist[p] != dist[v] - 1:
            return False
        if v not in set(map(int, graph.out_neighbors(p))):
            return False
    return True
