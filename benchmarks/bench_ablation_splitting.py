"""Ablation: the split_and_shuffle preprocessing (§5.2.1).

Two independent mechanisms, measured separately on skewed graphs:

* **splitting** caps per-task work: without it, one map task walks a
  hub's entire neighbor list serially, putting the hub's whole expansion
  on one lane's critical path;
* **shuffling** disperses a hub's sub-vertices: without it they sit in
  one contiguous key run, which Block binding hands to one lane —
  splitting alone doesn't help if all the pieces land together.
"""

from __future__ import annotations

import pytest

from repro.apps import PageRankApp
from repro.graph import CSRGraph, rmat
from repro.graph.splitting import split_and_shuffle
from repro.harness import series_table
from repro.harness.runner import BENCH_BLOCK_SIZE, bench_config
from repro.udweave import UpDownRuntime

from conftest import run_once

NODES = 8


def _run_pr(graph, max_degree=None, split=None):
    rt = UpDownRuntime(bench_config(NODES))
    app = PageRankApp(
        rt,
        graph,
        max_degree=max_degree or 64,
        block_size=BENCH_BLOCK_SIZE,
        split=split,
    )
    res = app.run(max_events=60_000_000)
    return res.elapsed_seconds, rt.sim.stats.load_imbalance()


@pytest.mark.benchmark(group="ablation")
def test_split_cap_bounds_hub_serialization(benchmark, save_results):
    """Max-degree sweep on a hub-dominated graph: tighter caps shorten
    the critical path until overhead wins (the artifact tunes 512 for
    PR).  The directed star isolates the effect — all edge work is the
    hub's, so unsplit it serializes on one lane."""
    n = 8192
    graph = CSRGraph.from_edges(
        [(0, i) for i in range(1, n)], n=n  # directed: hub out-edges only
    )

    def run_sweep():
        return {
            m: _run_pr(graph, max_degree=m)[0]
            for m in (8192, 512, 64, 16)
        }

    times = run_once(benchmark, run_sweep)
    rows = [(m, times[m] * 1e6, times[8192] / times[m]) for m in times]
    text = series_table(
        f"Ablation — split max degree, one degree-{n - 1} hub "
        f"({NODES} nodes)",
        rows,
        ["max_degree", "time_us", "speedup_vs_unsplit"],
    )
    gain = times[8192] / min(times.values())
    text += f"\n\nbest split cap is {gain:.1f}x faster than unsplit"
    benchmark.extra_info["split_gain"] = gain
    assert gain > 1.5
    save_results("ablation_splitting", text)


@pytest.mark.benchmark(group="ablation")
def test_shuffle_disperses_hub_subvertices(benchmark, save_results):
    """Same split cap, shuffle on vs off: the unshuffled hub pieces land
    contiguously and Block binding serializes them on few lanes."""
    graph = rmat(10, seed=48)

    def run_pair():
        out = {}
        for shuffle in (True, False):
            split = split_and_shuffle(graph, 32, seed=0, shuffle=shuffle)
            out[shuffle] = _run_pr(graph, split=split)
        return out

    results = run_once(benchmark, run_pair)
    (t_on, imb_on), (t_off, imb_off) = results[True], results[False]
    ratio = t_off / t_on
    text = (
        f"Ablation — sub-vertex shuffle (PR, rmat s10, cap 32, "
        f"{NODES} nodes):\n"
        f"  shuffled:   {t_on * 1e6:8.2f} us  imbalance {imb_on:5.2f}x\n"
        f"  unshuffled: {t_off * 1e6:8.2f} us  imbalance {imb_off:5.2f}x\n"
        f"  -> shuffle {ratio:.2f}x faster (why the tool is called "
        "split_AND_SHUFFLE)"
    )
    benchmark.extra_info["shuffle_gain"] = ratio
    assert ratio > 1.1
    assert imb_off > imb_on
    save_results("ablation_shuffle", text)
