"""Ablation: the combining cache's traffic reduction (paper footnote 1).

The software fetch&add "caches the value in the scratchpad for high
performance".  Measured directly: write-back (the default — one DRAM write
per distinct key per lane, at flush) vs write-through (one DRAM write per
*update*).  Both are correct under owner-lane serialization; the cache's
value is the DRAM-write collapse, which grows with key skew.
"""

from __future__ import annotations

import pytest

from repro.kvmsr import (
    CombiningCache,
    KVMSRJob,
    MapTask,
    RangeInput,
    ReduceTask,
    job_of,
)
from repro.machine import bench_machine
from repro.udweave import UpDownRuntime

from conftest import run_once

N_UPDATES = 2048
N_KEYS = 32  # heavy key reuse: 64 updates per key on average


class FanMap(MapTask):
    def kv_map(self, ctx, key):
        self.kv_emit(ctx, key % N_KEYS, 1)
        self.kv_map_return(ctx)


class WriteBackReduce(ReduceTask):
    """The paper's scheme: accumulate in scratchpad, one write at flush."""

    def kv_reduce(self, ctx, key, delta):
        app = job_of(ctx, self._job_id).payload
        app["cache"].add(ctx, key, delta)
        self.kv_reduce_return(ctx)

    def kv_flush(self, ctx):
        app = job_of(ctx, self._job_id).payload
        n = app["cache"].flush_to_region(ctx, app["region"], accumulate=True)
        self.kv_flush_return(ctx, n)


class WriteThroughReduce(ReduceTask):
    """Strawman: still scratchpad-correct, but writes DRAM per update."""

    def kv_reduce(self, ctx, key, delta):
        app = job_of(ctx, self._job_id).payload
        app["cache"].add(ctx, key, delta)
        total = app["cache"].get(ctx, key)
        ctx.send_dram_write(app["region"].addr(key), [total])
        self.kv_reduce_return(ctx)

    def kv_flush(self, ctx):
        app = job_of(ctx, self._job_id).payload
        app["cache"].flush(ctx, lambda c, k, v: None)
        self.kv_flush_return(ctx, 0)


def _run(reduce_cls, tag):
    rt = UpDownRuntime(bench_machine(nodes=4))
    region = rt.dram_malloc(N_KEYS * 8, name=f"acc_{tag}")
    app = {"region": region, "cache": CombiningCache(f"cc_{tag}")}
    KVMSRJob(
        rt, FanMap, RangeInput(N_UPDATES), reduce_cls=reduce_cls, payload=app
    ).launch()
    stats = rt.run(max_events=5_000_000)
    if tag == "wb":
        assert int(region.data.sum()) == N_UPDATES
    return rt.elapsed_seconds, stats.dram_writes


@pytest.mark.benchmark(group="ablation")
def test_combining_cache_collapses_writes(benchmark, save_results):
    def run_pair():
        wb = _run(WriteBackReduce, "wb")
        wt = _run(WriteThroughReduce, "wt")
        return wb, wt

    (t_wb, writes_wb), (t_wt, writes_wt) = run_once(benchmark, run_pair)
    benchmark.extra_info["write_reduction"] = writes_wt / max(writes_wb, 1)
    text = (
        "Ablation — combining cache (fetch&add), "
        f"{N_UPDATES} updates over {N_KEYS} keys on 4 nodes:\n"
        f"  write-back (paper):  {writes_wb:6} DRAM writes, "
        f"{t_wb * 1e6:8.2f} us\n"
        f"  write-through:       {writes_wt:6} DRAM writes, "
        f"{t_wt * 1e6:8.2f} us\n"
        f"  -> {writes_wt / max(writes_wb, 1):.0f}x fewer writes with the "
        "combining cache (footnote 1's 'high performance')"
    )
    # every update writes once vs <= keys-per-lane at flush
    assert writes_wt >= N_UPDATES
    assert writes_wb <= N_KEYS
    save_results("ablation_combining", text)
