"""§4.4's claim — "we have programmed many other examples" — measured.

The extension apps (connected components, weighted SSSP, GNN aggregation)
each run unchanged across machine sizes and speed up, with results
validated against their oracles at every configuration.  This is the
artifact's third expected result ("the algorithms do not need to be
adapted as more computational resources become available") applied to the
apps beyond the paper's headline three.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import (
    ConnectedComponentsApp,
    GNNApp,
    SSSPApp,
    default_weights,
    reference_components,
    reference_features,
    reference_integrate,
    reference_sssp,
)
from repro.graph import rmat
from repro.harness import series_table
from repro.harness.runner import BENCH_BLOCK_SIZE, bench_config
from repro.udweave import UpDownRuntime

from conftest import run_once

NODE_PAIR = (1, 16)


@pytest.mark.benchmark(group="extras")
def test_extension_apps_scale(benchmark, save_results):
    graph = rmat(10, seed=48)
    weights = default_weights(graph)
    cc_oracle = reference_components(graph)
    sssp_oracle = reference_sssp(graph, weights, 0)
    gnn_oracle = reference_integrate(graph, reference_features(graph))

    def run_all():
        times = {}
        for nodes in NODE_PAIR:
            rt = UpDownRuntime(bench_config(nodes))
            cc = ConnectedComponentsApp(
                rt, graph, block_size=BENCH_BLOCK_SIZE
            ).run(max_events=120_000_000)
            assert np.array_equal(cc.labels, cc_oracle)
            times[("cc", nodes)] = cc.elapsed_seconds

            rt = UpDownRuntime(bench_config(nodes))
            ss = SSSPApp(
                rt, graph, weights=weights, block_size=BENCH_BLOCK_SIZE
            ).run(source=0, max_events=200_000_000)
            assert np.array_equal(ss.distances, sssp_oracle)
            times[("sssp", nodes)] = ss.elapsed_seconds

            rt = UpDownRuntime(bench_config(nodes))
            gn = GNNApp(rt, graph, block_size=BENCH_BLOCK_SIZE).run(
                max_events=120_000_000
            )
            assert np.allclose(gn.aggregated, gnn_oracle)
            times[("gnn", nodes)] = gn.elapsed_seconds
        return times

    times = run_once(benchmark, run_all)
    lo, hi = NODE_PAIR
    rows = []
    for app in ("cc", "sssp", "gnn"):
        speedup = times[(app, lo)] / times[(app, hi)]
        rows.append((app, times[(app, lo)] * 1e6, times[(app, hi)] * 1e6,
                     speedup))
        benchmark.extra_info[f"{app}_speedup"] = speedup
        assert speedup > 1.5, app
    text = series_table(
        f"Extension apps: unchanged code, {lo} -> {hi} nodes "
        "(results oracle-checked at both sizes)",
        rows,
        ["app", f"t_{lo}n_us", f"t_{hi}n_us", "speedup"],
    )
    save_results("extras_scaling", text)
