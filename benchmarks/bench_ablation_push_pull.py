"""Ablation: push vs pull PageRank — the §4.1 formulation choice.

The paper implements push ("each edge propagation is a task") for maximum
exposed parallelism.  The pull formulation eliminates the shuffle but
reads a contribution word per in-edge.  We measure both on the same graph
and machine, same answer enforced.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import PageRankApp
from repro.apps.pagerank_pull import PullPageRankApp
from repro.graph import rmat
from repro.harness import series_table
from repro.harness.runner import BENCH_BLOCK_SIZE, bench_config
from repro.udweave import UpDownRuntime

from conftest import run_once

NODES = 16


@pytest.mark.benchmark(group="ablation")
def test_push_vs_pull_pagerank(benchmark, save_results):
    graph = rmat(10, seed=48)

    def run_pair():
        rt_push = UpDownRuntime(bench_config(NODES))
        push = PageRankApp(
            rt_push, graph, max_degree=64, block_size=BENCH_BLOCK_SIZE
        ).run(max_events=60_000_000)
        rt_pull = UpDownRuntime(bench_config(NODES))
        pull = PullPageRankApp(
            rt_pull, graph, block_size=BENCH_BLOCK_SIZE
        ).run(max_events=60_000_000)
        assert np.allclose(push.ranks, pull.ranks, atol=1e-12)
        return (
            (push.elapsed_seconds, rt_push.sim.stats),
            (pull.elapsed_seconds, rt_pull.sim.stats),
        )

    (t_push, s_push), (t_pull, s_pull) = run_once(benchmark, run_pair)
    rows = [
        ("push", t_push * 1e6, s_push.messages_sent, s_push.dram_reads),
        ("pull", t_pull * 1e6, s_pull.messages_sent, s_pull.dram_reads),
    ]
    text = series_table(
        f"Ablation — push vs pull PageRank ({NODES} nodes, rmat s10, "
        "identical ranks enforced)",
        rows,
        ["formulation", "time_us", "messages", "dram_reads"],
    )
    text += (
        f"\n\npush/pull time ratio: {t_push / t_pull:.2f} "
        "(push moves ~1 message/edge through the shuffle; pull trades it "
        "for ~1 contribution read/edge — §4.1 chose push for its exposed "
        "edge parallelism)"
    )
    benchmark.extra_info["push_over_pull"] = t_push / t_pull
    # the structural signature must hold regardless of which wins
    assert s_push.messages_sent > 2 * s_pull.messages_sent
    assert s_pull.dram_reads > s_push.dram_reads
    save_results("ablation_push_pull", text)
