"""Ablation: latency tolerance via multithreading (paper §3.2).

"On UpDown, non-blocking memory accesses and multithreading allow robust
latency tolerance."  The knob in this reproduction is the per-lane map
inflight bound; with inflight 1 every split-phase chain serializes and
multi-node latency is fully exposed — the configuration that made early
calibration runs *regress* from 1 to 2 nodes (DESIGN.md).
"""

from __future__ import annotations

import pytest

from repro.apps import PageRankApp
from repro.graph import rmat
from repro.harness import series_table
from repro.harness.runner import BENCH_BLOCK_SIZE, bench_config
from repro.udweave import UpDownRuntime

from conftest import run_once

INFLIGHTS = (1, 4, 16, 64)
NODES = 16


@pytest.mark.benchmark(group="ablation")
def test_inflight_latency_tolerance(benchmark, save_results):
    graph = rmat(10, seed=48)

    def run_sweep():
        times = {}
        for inflight in INFLIGHTS:
            rt = UpDownRuntime(bench_config(NODES))
            app = PageRankApp(
                rt,
                graph,
                max_degree=64,
                block_size=BENCH_BLOCK_SIZE,
                max_inflight=inflight,
            )
            res = app.run(max_events=60_000_000)
            times[inflight] = res.elapsed_seconds
        return times

    times = run_once(benchmark, run_sweep)
    base = times[1]
    rows = [(i, times[i] * 1e6, base / times[i]) for i in INFLIGHTS]
    text = series_table(
        f"Ablation — map-task inflight bound (PR, {NODES} nodes)",
        rows,
        ["inflight", "time_us", "speedup_vs_1"],
    )
    gain = base / times[64]
    benchmark.extra_info["inflight_gain"] = gain
    text += (
        f"\n\nlatency tolerance gain at inflight 64: {gain:.2f}x "
        "(§3.2: multithreading hides DRAM and network latency)"
    )
    assert gain > 2.0
    assert times[64] <= times[16] * 1.1  # saturating, not regressing
    save_results("ablation_inflight", text)
