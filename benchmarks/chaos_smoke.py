"""CI smoke: resilient delivery survives injected drops bit-for-bit.

Runs one fixed seeded PageRank workload twice — fault-free, then under a
deterministic :class:`~repro.faults.FaultPlan` dropping ~1% of remote
messages with ack/retry (``reliable=True``) enabled — and asserts the
functional result (the rank vector, i.e. the KVMSR reduce output) is
bit-identical, that the plan actually dropped messages (a chaos run that
injects nothing proves nothing), and that the faulty run reached true
quiescence.  This is the cheap end-to-end version of
``tests/integration/test_chaos.py`` that CI runs on every push.

On failure the recorded fault timeline (the flight recorder's ``faults``
taxonomy: every drop/duplicate/delay/retransmit give-up with its
timestamp) is written next to the results so CI can upload it as an
artifact for triage.

Usage::

    PYTHONPATH=src python benchmarks/chaos_smoke.py [--drop-rate 0.01]
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_TRACE = REPO_ROOT / "CHAOS_faults.json"


def chaos_graph(n: int = 256):
    """Ring-with-chords: every vertex points at i+1 and i+2 (mod n).

    Uniform out-degree 2 and a power-of-two vertex count keep every
    PageRank contribution (with damping 0.5) an exact binary fraction,
    so floating-point sums are order-invariant and retry-induced
    reordering cannot perturb the result — the golden comparison below
    is a legitimate bit-for-bit equality, not a tolerance check.
    """
    from repro.graph import CSRGraph

    return CSRGraph.from_edges(
        [(i, (i + 1) % n) for i in range(n)]
        + [(i, (i + 2) % n) for i in range(n)],
        n=n,
    )


def run_once(faults=None, reliable=False):
    from repro.apps.pagerank import PageRankApp
    from repro.harness.runner import BENCH_BLOCK_SIZE, bench_config
    from repro.observe import make_recorder
    from repro.udweave import UpDownRuntime

    recorder = make_recorder("phases")
    rt = UpDownRuntime(
        bench_config(4),
        faults=faults,
        reliable=reliable,
        recorder=recorder,
        watchdog_cycles=500_000.0,
    )
    app = PageRankApp(
        rt, chaos_graph(), max_degree=16, damping=0.5,
        block_size=BENCH_BLOCK_SIZE,
    )
    t0 = time.perf_counter()
    try:
        res = app.run(iterations=3)
    finally:
        rt.shutdown()
    return {
        "ranks": list(res.ranks),
        "stats": rt.sim.stats,
        "recorder": recorder,
        "seconds": time.perf_counter() - t0,
    }


def write_fault_trace(path: Path, plan, run) -> None:
    """Dump the faults taxonomy the flight recorder collected."""
    recorder = run["recorder"]
    stats = run["stats"]
    path.write_text(json.dumps({
        "plan": plan.describe(),
        "fault_counts": dict(recorder.fault_counts),
        "fault_events": [
            {"kind": kind, "tick": tick, "detail": list(detail)}
            for kind, tick, detail in recorder.fault_events
        ],
        "fault_events_dropped": recorder.fault_events_dropped,
        "transport": {
            "tracked": stats.transport_tracked,
            "retransmits": stats.transport_retransmits,
            "acks": stats.transport_acks,
            "dup_suppressed": stats.transport_dup_suppressed,
            "give_ups": stats.transport_give_ups,
        },
    }, indent=2) + "\n")


def main(argv=None) -> int:
    from repro.faults import FaultPlan

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--drop-rate", type=float, default=0.01,
        help="remote-message drop probability for the chaos run",
    )
    parser.add_argument(
        "--seed", type=int, default=11, help="fault-plan seed"
    )
    parser.add_argument(
        "--trace", type=Path, default=DEFAULT_TRACE,
        help="where to write the fault timeline on failure",
    )
    args = parser.parse_args(argv)

    plan = FaultPlan(seed=args.seed, drop_rate=args.drop_rate)
    golden = run_once()
    chaos = run_once(faults=plan, reliable=True)
    stats = chaos["stats"]

    failures = []
    if stats.faults_messages_dropped == 0:
        failures.append(
            "the fault plan dropped nothing — the smoke is vacuous; "
            "raise --drop-rate or change --seed"
        )
    if not stats.quiesced:
        failures.append(
            f"chaos run did not quiesce: {stats.pending_threads} "
            f"thread(s) still pending"
        )
    if chaos["ranks"] != golden["ranks"]:
        diverged = sum(
            1 for a, b in zip(chaos["ranks"], golden["ranks"]) if a != b
        )
        failures.append(
            f"reduce results diverged from the fault-free golden: "
            f"{diverged}/{len(golden['ranks'])} rank entries differ"
        )
    if failures:
        write_fault_trace(args.trace, plan, chaos)
        for failure in failures:
            print(f"FAIL: {failure}")
        print(f"fault timeline written to {args.trace}")
        return 1
    print(
        f"chaos smoke OK: {stats.faults_messages_dropped} drops recovered "
        f"by {stats.transport_retransmits} retransmits "
        f"({stats.transport_tracked:,} tracked sends, "
        f"{stats.transport_give_ups} give-ups); reduce results bit-identical "
        f"to fault-free golden; fault-free {golden['seconds']:.2f}s, "
        f"chaos {chaos['seconds']:.2f}s"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
