"""Always-on service benchmark: QPS-vs-p99 curves and chaos-soak verdicts.

Three scenarios, all bit-reproducible from their seeds:

* ``steady`` — an offered-load sweep (one request every ``gap`` cycles)
  against a machine with a constrained injection port, tracing the
  QPS-vs-p99 curve per request class from the flat region through the
  queueing knee;
* ``bursty`` — on/off traffic whose idle gaps dwarf the liveness
  watchdog, proving intentional idleness is not a stall;
* ``chaos_soak`` — steady traffic under a deterministic 1% message-drop
  plan with ack/retry delivery, ending in a machine-checkable SLO
  verdict (the healthy scenarios must pass theirs too).

Each scenario also reruns its representative configuration with the same
seed and with ``shards=2`` and records whether the result fingerprint
(latency histograms, per-request statuses, admission counters, give-up
set) is identical — a ``false`` there is a determinism regression, not a
performance data point.

Results land in ``BENCH_service.json`` at the repo root.

Usage::

    PYTHONPATH=src python benchmarks/bench_service.py
    PYTHONPATH=src python benchmarks/bench_service.py --quick   # CI smoke
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_service.json"

#: model clock (2 GHz) — converts arrival gaps to offered QPS.
CLOCK_HZ = 2e9

WORKLOAD_SEED = 21
NODES = 4

#: steady sweep: injection bandwidth scaled down so the offered-load
#: sweep actually crosses the queueing knee on the tiny bench machine.
STEADY_BW = 0.3
STEADY_GAPS_FULL = (1600.0, 800.0, 400.0, 200.0, 100.0, 50.0)
STEADY_GAPS_QUICK = (800.0, 200.0)


def _hist_dict(svc):
    return {
        cls: {
            "buckets": {str(k): v for k, v in sorted(h.buckets.items())},
            "count": h.count,
            "p50_cycles": h.quantile_bound(0.5),
            "p99_cycles": h.quantile_bound(0.99),
            "max_cycles": h.max,
        }
        for cls, h in svc.latency_hist.items()
        if h.count
    }


def _entry(svc, wall):
    return {
        "statuses": dict(svc.status_counts),
        "admission": svc.admission.counters(),
        "transport_give_ups": svc.transport_give_ups,
        "fault_counts": dict(svc.fault_counts),
        "latency": _hist_dict(svc),
        "verdict": svc.verdict.to_dict(),
        "fingerprint": svc.fingerprint(),
        "host_seconds": wall,
    }


def _run(requests, slo, **kw):
    from repro.harness import run_service

    t0 = time.perf_counter()
    rec = run_service(requests, nodes=NODES, slo=slo, **kw)
    return rec.extra["service"], time.perf_counter() - t0


def _reproduce(requests, slo, base, **kw):
    """Same-seed rerun + shards=2 rerun; compare against ``base``."""
    rerun, _ = _run(requests, slo, **kw)
    sharded, _ = _run(requests, slo, shards=2, **kw)
    return {
        "rerun_identical": rerun.fingerprint() == base.fingerprint(),
        "shards2_identical": sharded.fingerprint() == base.fingerprint(),
        "verdict_identical": (
            rerun.verdict.to_dict()
            == sharded.verdict.to_dict()
            == base.verdict.to_dict()
        ),
    }


def bench_steady(n_requests, gaps):
    from repro.service import SLOSpec, ServiceWorkload, SteadyArrivals

    wl = ServiceWorkload(seed=WORKLOAD_SEED, n_vertices=64)
    slo = SLOSpec()
    curve = []
    last = None
    for gap in gaps:
        reqs = wl.requests(SteadyArrivals(gap_cycles=gap).times(n_requests))
        svc, wall = _run(
            reqs, slo, node_injection_bytes_per_cycle=STEADY_BW
        )
        point = _entry(svc, wall)
        point["gap_cycles"] = gap
        point["offered_qps"] = CLOCK_HZ / gap
        curve.append(point)
        last = (reqs, svc)
    reqs, svc = last
    return {
        "scenario": "steady",
        "nodes": NODES,
        "injection_bytes_per_cycle": STEADY_BW,
        "curve": curve,
        "reproducibility": _reproduce(
            reqs, slo, svc, node_injection_bytes_per_cycle=STEADY_BW
        ),
    }


def bench_bursty(n_requests):
    from repro.service import BurstyArrivals, SLOSpec, ServiceWorkload

    wl = ServiceWorkload(seed=WORKLOAD_SEED, n_vertices=64)
    slo = SLOSpec()
    arr = BurstyArrivals(
        burst_size=16, gap_cycles=250.0, idle_gap_cycles=60_000.0
    )
    reqs = wl.requests(arr.times(n_requests))
    kw = dict(watchdog_cycles=30_000.0)
    svc, wall = _run(reqs, slo, **kw)
    out = _entry(svc, wall)
    out.update(
        scenario="bursty",
        nodes=NODES,
        burst_size=16,
        idle_gap_cycles=60_000.0,
        watchdog_cycles=30_000.0,
        reproducibility=_reproduce(reqs, slo, svc, **kw),
    )
    return out


def bench_chaos(n_requests, drop_rate):
    from repro.faults import FaultPlan
    from repro.service import SLOSpec, ServiceWorkload, SteadyArrivals

    wl = ServiceWorkload(seed=WORKLOAD_SEED, n_vertices=64)
    slo = SLOSpec()
    reqs = wl.requests(SteadyArrivals(gap_cycles=2500.0).times(n_requests))
    kw = dict(
        faults=FaultPlan(seed=13, drop_rate=drop_rate),
        reliable=True,
        watchdog_cycles=100_000.0,
    )
    svc, wall = _run(reqs, slo, **kw)
    out = _entry(svc, wall)
    out.update(
        scenario="chaos_soak",
        nodes=NODES,
        drop_rate=drop_rate,
        reproducibility=_reproduce(reqs, slo, svc, **kw),
    )
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI-sized runs")
    parser.add_argument("--drop-rate", type=float, default=0.01)
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT)
    args = parser.parse_args(argv)

    n = 80 if args.quick else 200
    gaps = STEADY_GAPS_QUICK if args.quick else STEADY_GAPS_FULL

    scenarios = [
        bench_steady(n, gaps),
        bench_bursty(n),
        bench_chaos(n, args.drop_rate),
    ]

    failures = []
    for sc in scenarios:
        rep = sc["reproducibility"]
        for key, ok in rep.items():
            if not ok:
                failures.append(f"{sc['scenario']}: {key} is False")
    # healthy runs must pass their SLO: the low-load steady points, the
    # bursty soak, and the chaos soak (1% drops are recovered)
    if not scenarios[0]["curve"][0]["verdict"]["passed"]:
        failures.append("steady low-load point failed its SLO")
    for sc in scenarios[1:]:
        if not sc["verdict"]["passed"]:
            failures.append(f"{sc['scenario']} failed its SLO")
    chaos = scenarios[2]
    if chaos["fault_counts"].get("msg_drop", 0) == 0:
        failures.append("chaos soak dropped nothing — vacuous")

    payload = {
        "python": platform.python_version(),
        "quick": args.quick,
        "workload_seed": WORKLOAD_SEED,
        "requests_per_scenario": n,
        "scenarios": scenarios,
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")
    for sc in scenarios:
        rep = sc["reproducibility"]
        if sc["scenario"] == "steady":
            knee = " -> ".join(
                f"{p['offered_qps']:.2e}qps:p99u={p['latency']['update']['p99_cycles']:.0f}"
                for p in sc["curve"]
            )
            print(f"steady: {knee}")
        else:
            v = sc["verdict"]
            print(
                f"{sc['scenario']}: passed={v['passed']} "
                f"statuses={sc['statuses']} give_ups={sc['transport_give_ups']}"
            )
        print(f"  reproducibility: {rep}")
    if failures:
        for f in failures:
            print(f"FAIL: {f}")
        return 1
    print("bench_service OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
