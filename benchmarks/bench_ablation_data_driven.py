"""Ablation: the Data-driven binding (§2.3's listed "future" scheme).

Hash binding balances reduces but scatters them away from their
accumulator words; the data-driven binding co-locates each reduce with
its datum, converting flush writes (and any reduce-side reads) from
remote to local.  The trade is balance: placement now follows the data
layout.  We measure both effects on PageRank.
"""

from __future__ import annotations

import pytest

from repro.apps import PageRankApp
from repro.graph import rmat
from repro.harness import series_table
from repro.harness.runner import BENCH_BLOCK_SIZE, bench_config
from repro.udweave import UpDownRuntime

from conftest import run_once

NODES = 16


@pytest.mark.benchmark(group="ablation")
def test_data_driven_binding_localizes(benchmark, save_results):
    graph = rmat(10, seed=48)

    def run_pair():
        out = {}
        for placement in ("hash", "data"):
            rt = UpDownRuntime(bench_config(NODES))
            app = PageRankApp(
                rt,
                graph,
                max_degree=64,
                block_size=BENCH_BLOCK_SIZE,
                reduce_placement=placement,
            )
            res = app.run(max_events=60_000_000)
            out[placement] = (
                res.elapsed_seconds,
                rt.sim.stats.dram_remote_accesses,
                rt.sim.stats.load_imbalance(),
            )
        return out

    results = run_once(benchmark, run_pair)
    rows = [
        (name, t * 1e6, remote, imb)
        for name, (t, remote, imb) in results.items()
    ]
    text = series_table(
        f"Ablation — reduce placement on PR ({NODES} nodes, rmat s10)",
        rows,
        ["binding", "time_us", "remote_dram", "imbalance"],
    )
    remote_cut = (
        results["hash"][1] / max(results["data"][1], 1)
    )
    text += (
        f"\n\nremote DRAM accesses cut {remote_cut:.2f}x by data-driven "
        "placement (§2.3: task executes on the node owning its datum)"
    )
    benchmark.extra_info["remote_cut"] = remote_cut
    assert results["data"][1] < results["hash"][1]
    save_results("ablation_data_driven", text)
