"""CI smoke: the packet-coalescing fabric is bit-exact.

Runs one fixed seeded PageRank workload three ways — coalescing off,
coalescing on (sequential), and coalescing on under a sharded drain —
and asserts that every always-on scalar counter except the two packet
counters themselves, the host mailbox, and the functional output are
identical.  Coalescing only merges host-side heap entries; each member
record still pays its own lane cost, injection occupancy, and remote
latency, so any drift here is a correctness bug, not a tuning artifact.
The packet counters must also satisfy record conservation:
``packets_sent + records_coalesced == messages_remote``.

Usage::

    PYTHONPATH=src python benchmarks/coalesce_smoke.py [--shards 2]
"""

from __future__ import annotations

import argparse
import time

#: counters that only exist when coalescing is on; stripped before the
#: cross-mode fingerprint comparison, then checked for conservation
PACKET_KEYS = ("packets_sent", "records_coalesced")


def run_once(coalescing: bool, shards: int = 1):
    from repro.apps.pagerank import PageRankApp
    from repro.graph.generators import rmat
    from repro.harness.runner import BENCH_BLOCK_SIZE, bench_config
    from repro.udweave import UpDownRuntime

    graph = rmat(9, seed=7)
    rt = UpDownRuntime(bench_config(4, coalescing=coalescing), shards=shards)
    app = PageRankApp(rt, graph, block_size=BENCH_BLOCK_SIZE)
    t0 = time.perf_counter()
    try:
        res = app.run(iterations=2)
    finally:
        rt.shutdown()
    seconds = time.perf_counter() - t0
    mailbox = [(t, rec.label, rec.operands) for t, rec in rt.sim.host_inbox]
    snapshot = rt.sim.stats.scalar_snapshot()
    return {
        "fingerprint": {
            k: v for k, v in snapshot.items() if k not in PACKET_KEYS
        },
        "packets": {k: snapshot.get(k, 0) for k in PACKET_KEYS},
        "messages_remote": snapshot["messages_remote"],
        "mailbox": mailbox,
        "ranks": list(res.ranks),
        "seconds": seconds,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--shards",
        type=int,
        default=2,
        help="shard count for the coalescing-under-sharding run",
    )
    args = parser.parse_args(argv)

    off = run_once(coalescing=False)
    on = run_once(coalescing=True)
    sharded = run_once(coalescing=True, shards=args.shards)

    failures = []
    for name, run in (("coalescing on", on), (f"shards={args.shards}", sharded)):
        if run["fingerprint"] != off["fingerprint"]:
            diff = {
                k: (off["fingerprint"][k], run["fingerprint"][k])
                for k in off["fingerprint"]
                if off["fingerprint"][k] != run["fingerprint"].get(k)
            }
            failures.append(f"{name}: scalar fingerprint diverged: {diff}")
        if run["mailbox"] != off["mailbox"]:
            failures.append(f"{name}: host mailbox diverged")
        if run["ranks"] != off["ranks"]:
            failures.append(f"{name}: functional output (ranks) diverged")
        conserved = (
            run["packets"]["packets_sent"]
            + run["packets"]["records_coalesced"]
        )
        if conserved != run["messages_remote"]:
            failures.append(
                f"{name}: record conservation broken — "
                f"{run['packets']} vs messages_remote="
                f"{run['messages_remote']}"
            )
    if on["packets"]["records_coalesced"] == 0:
        failures.append(
            "coalescing never fired — the smoke lost its subject"
        )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    fp = off["fingerprint"]
    print(
        f"coalesce smoke OK: off / on / shards={args.shards} bit-identical "
        f"({fp['events_executed']:,} events, final_tick={fp['final_tick']}); "
        f"{on['packets']['records_coalesced']:,} of "
        f"{on['messages_remote']:,} remote records coalesced into "
        f"{on['packets']['packets_sent']:,} packets; "
        f"off {off['seconds']:.2f}s, on {on['seconds']:.2f}s"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
