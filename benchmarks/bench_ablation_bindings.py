"""Ablation: computation-binding choices under skew (paper §2.3, §4.3.3).

The paper's design claims, measured in isolation:

* **Block vs PBMW for kv_map**: with a contiguous run of heavy keys
  (a degree-sorted hub block), Block binding serializes the heavy prefix
  on a few lanes; PBMW's initial partial blocks + master grants rebalance.
* **Hash vs pathological reduce binding**: Hash "ensures good load
  balance" (§4.1.2); a deliberately bad custom binding (everything on one
  lane) shows what it protects against.
"""

from __future__ import annotations

import pytest

from repro.kvmsr import (
    BlockBinding,
    CustomReduceBinding,
    HashBinding,
    KVMSRJob,
    MapTask,
    PBMWBinding,
    RangeInput,
    ReduceTask,
)
from repro.machine import bench_machine
from repro.udweave import UpDownRuntime

from conftest import run_once

N_KEYS = 512


class SkewedWork(MapTask):
    """Heavy contiguous prefix: keys < 64 cost 1000x the rest."""

    def kv_map(self, ctx, key):
        ctx.work(5000 if key < 64 else 5)
        self.kv_map_return(ctx)


class FanoutMap(MapTask):
    def kv_map(self, ctx, key):
        self.kv_emit(ctx, key, 1)
        self.kv_map_return(ctx)


class NullReduce(ReduceTask):
    def kv_reduce(self, ctx, key, one):
        ctx.work(20)
        self.kv_reduce_return(ctx)


def _run_map_binding(binding):
    rt = UpDownRuntime(bench_machine(nodes=8))
    KVMSRJob(
        rt, SkewedWork, RangeInput(N_KEYS), map_binding=binding
    ).launch()
    stats = rt.run(max_events=5_000_000)
    return rt.elapsed_seconds, stats.load_imbalance()


@pytest.mark.benchmark(group="ablation")
def test_pbmw_beats_block_under_skew(benchmark, save_results):
    def run_pair():
        block = _run_map_binding(BlockBinding())
        pbmw = _run_map_binding(
            PBMWBinding(initial_fraction=0.25, chunk_size=4)
        )
        return block, pbmw

    (t_block, imb_block), (t_pbmw, imb_pbmw) = run_once(benchmark, run_pair)
    ratio = t_block / t_pbmw
    benchmark.extra_info["block_over_pbmw"] = ratio
    text = (
        "Ablation — map binding under a contiguous hub block (8 nodes):\n"
        f"  Block: {t_block * 1e6:8.2f} us  imbalance {imb_block:5.2f}x\n"
        f"  PBMW : {t_pbmw * 1e6:8.2f} us  imbalance {imb_pbmw:5.2f}x\n"
        f"  -> PBMW {ratio:.2f}x faster (paper §4.3.3: PBMW 'more robust "
        "to larger work skews across blocks')"
    )
    assert ratio > 1.5
    assert imb_pbmw < imb_block
    save_results("ablation_bindings_map", text)


def _run_reduce_binding(binding):
    rt = UpDownRuntime(bench_machine(nodes=8))
    KVMSRJob(
        rt,
        FanoutMap,
        RangeInput(N_KEYS),
        reduce_cls=NullReduce,
        reduce_binding=binding,
    ).launch()
    stats = rt.run(max_events=5_000_000)
    return rt.elapsed_seconds, stats.load_imbalance()


@pytest.mark.benchmark(group="ablation")
def test_hash_reduce_binding_balances(benchmark, save_results):
    def run_pair():
        hashed = _run_reduce_binding(HashBinding())
        single = _run_reduce_binding(CustomReduceBinding(lambda key: 0))
        return hashed, single

    (t_hash, imb_hash), (t_one, imb_one) = run_once(benchmark, run_pair)
    ratio = t_one / t_hash
    benchmark.extra_info["single_over_hash"] = ratio
    text = (
        "Ablation — reduce binding (8 nodes, 512 reduce tasks):\n"
        f"  Hash binding:      {t_hash * 1e6:8.2f} us  "
        f"imbalance {imb_hash:5.2f}x\n"
        f"  everything-lane-0: {t_one * 1e6:8.2f} us  "
        f"imbalance {imb_one:5.2f}x\n"
        f"  -> Hash {ratio:.2f}x faster (§4.1.2's load-balance claim)"
    )
    assert ratio > 2.0
    save_results("ablation_bindings_reduce", text)
