"""Figure 9 (center) / Table 9: BFS strong scaling, 1 -> 256 nodes.

Table 9's key qualitative features: RMAT s28 scales well (178x at 256);
com-orkut saturates around 16x; soc-livej saturates hard below 6x (too
small for the machine).  The stand-ins reproduce the *ordering*: the
biggest graph scales furthest and the smallest saturates first.
"""

from __future__ import annotations

import pytest

from repro.graph import load_dataset
from repro.harness import (
    PR_BFS_NODES,
    run_bfs,
    shape_agreement,
    shape_summary,
    speedup_table,
    speedups,
    sweep,
)

from conftest import run_once

#: artifact Table 9
PAPER_TABLE9 = {
    "com-orkut": {1: 1.0, 2: 2.6, 4: 4.5, 8: 7.0, 16: 8.9, 32: 12.3,
                  64: 13.7, 128: 15.5, 256: 16.6},
    "soc-livej": {1: 1.0, 2: 2.0, 4: 2.9, 8: 4.1, 16: 4.9, 32: 5.9,
                  64: 5.5, 128: 5.7, 256: 5.7},
    "rmat-s12": {1: 1.0, 2: 2.3, 4: 3.9, 8: 7.4, 16: 17.5, 32: 31.3,
                 64: 59.7, 128: 112.8, 256: 178.7},  # paper: RMAT s28
}

GRAPHS = ("com-orkut", "soc-livej", "rmat-s12")

#: BFS splits to max degree 4096 in the paper; scaled with the graphs
SPLIT_MAX_DEGREE = 128


@pytest.mark.benchmark(group="fig9")
def test_fig9_bfs_strong_scaling(benchmark, save_results):
    def run_sweep():
        series = {}
        for name in GRAPHS:
            graph = load_dataset(name)
            records = sweep(
                run_bfs, PR_BFS_NODES, graph=graph,
                max_degree=SPLIT_MAX_DEGREE,
            )
            series[name] = speedups(records)
        return series

    series = run_once(benchmark, run_sweep)

    lines = [
        speedup_table(
            "Figure 9 (center) / Table 9 — BFS strong scaling "
            "(speedup over 1 node)",
            PR_BFS_NODES,
            series,
            reported=PAPER_TABLE9,
        ),
        "",
    ]
    for name in GRAPHS:
        agreement = shape_agreement(series[name], PAPER_TABLE9[name])
        lines.append(
            shape_summary(name, series[name], PAPER_TABLE9[name], agreement)
        )
        benchmark.extra_info[f"{name}_peak_speedup"] = max(
            series[name].values()
        )
        assert agreement > 0.5, name
    # ordering claim: the big RMAT scales furthest, like the paper
    peaks = {n: max(series[n].values()) for n in GRAPHS}
    lines.append(f"peak ordering: {sorted(peaks, key=peaks.get)}")
    assert peaks["rmat-s12"] == max(peaks.values())
    save_results("fig9_bfs", "\n".join(lines))
