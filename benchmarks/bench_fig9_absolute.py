"""Figure 9's absolute-performance dimension (§5.2.1-§5.2.3).

The paper reports absolute rates (39,617 GUPS PR; 35,700 GTEPS BFS) and
compares against Perlmutter / EOS.  Those machines aren't reproducible;
what is checkable here:

* the simulated machine's absolute rates at a mid-size configuration,
  printed next to the paper's full-scale figures (documenting the scale
  gap explicitly), and
* the *simulated-machine vs host-CPU* ratio on identical work — the
  reproduction's analog of the paper's cross-machine comparison, using
  the NumPy oracle as the conventional-processor baseline.
"""

from __future__ import annotations

import time

import pytest

from repro.baselines import bfs as ref_bfs, pagerank as ref_pagerank
from repro.graph import load_dataset
from repro.harness import run_bfs, run_pagerank, series_table

from conftest import run_once

NODES = 64


@pytest.mark.benchmark(group="fig9")
def test_absolute_rates(benchmark, save_results):
    graph = load_dataset("rmat-s12")

    def run_all():
        pr = run_pagerank(graph, nodes=NODES, max_degree=64)
        bfs = run_bfs(graph, nodes=NODES, max_degree=128)
        # host-CPU reference timings on the same work
        t0 = time.perf_counter()
        ref_pagerank(graph, 1)
        host_pr = time.perf_counter() - t0
        t0 = time.perf_counter()
        ref_bfs(graph, 0)
        host_bfs = time.perf_counter() - t0
        return pr, bfs, host_pr, host_bfs

    pr, bfs, host_pr, host_bfs = run_once(benchmark, run_all)

    pr_gups = pr.metric
    bfs_gteps = bfs.metric
    rows = [
        ("PR", pr.seconds * 1e6, pr_gups, host_pr * 1e6, host_pr / pr.seconds),
        ("BFS", bfs.seconds * 1e6, bfs_gteps, host_bfs * 1e6,
         host_bfs / bfs.seconds),
    ]
    text = series_table(
        f"Absolute performance at {NODES} simulated nodes (rmat-s12)",
        rows,
        ["app", "sim_us", "Grate/s", "host_us", "sim/host"],
    )
    text += (
        "\n\npaper full-scale rates: PR 39,617 GUPS (512 nodes, ER s28; "
        "12,188x over Perlmutter), BFS 35,700 GTEPS (512 nodes, RMAT s28; "
        "above a 4096-node EOS cluster at 1/12th power).\n"
        "The simulated machine beats the host CPU on identical work even "
        "at this reduced scale; absolute rates scale with machine and "
        "graph size (see DESIGN.md)."
    )
    benchmark.extra_info["pr_gups"] = pr_gups
    benchmark.extra_info["bfs_gteps"] = bfs_gteps
    assert pr_gups > 0 and bfs_gteps > 0
    # the simulated machine outpaces the host oracle on the same graph
    assert pr.seconds < host_pr
    save_results("fig9_absolute", text)
