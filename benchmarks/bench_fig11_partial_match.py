"""Figure 11 / Table 12: Partial Match streaming latency vs resources.

The paper streams records against registered patterns and measures
per-record latency, showing latency *decreases* as compute resources grow
(speedups 1.0 / 3.34 / 5.56 / 10.42 over a 1/8-node baseline).  Our
fractional-node points map onto small simulated-node counts; the claim
under test is the monotone latency reduction.
"""

from __future__ import annotations

import pytest

from repro.apps import Pattern, make_workload, reference_matches
from repro.harness import run_partial_match, series_table

from conftest import run_once

#: artifact Table 12 (speedup over the smallest configuration)
PAPER_TABLE12 = {"1/8": 1.00, "1/2": 3.34, "1": 5.56, "4": 10.42}

NODE_SWEEP = (1, 2, 4, 8)

PATTERNS = [Pattern(0, (0, 1)), Pattern(1, (2, 0, 1)), Pattern(2, (1, 1))]


@pytest.mark.benchmark(group="fig11")
def test_fig11_partial_match_latency(benchmark, save_results):
    records = make_workload(400, n_edge_types=3, seed=21)

    # stream fast enough to overload the smallest configuration — the
    # regime Figure 11 measures ("latency can be decreased by adding
    # compute resources")
    def run_sweep():
        out = {}
        for nodes in NODE_SWEEP:
            rec = run_partial_match(
                records, PATTERNS, nodes=nodes, gap_cycles=10.0
            )
            out[nodes] = rec
        return out

    results = run_once(benchmark, run_sweep)

    base = results[NODE_SWEEP[0]].seconds
    rows = [
        (n, results[n].seconds * 1e6, base / results[n].seconds)
        for n in NODE_SWEEP
    ]
    text = series_table(
        "Figure 11 / Table 12 — Partial Match mean latency vs nodes",
        rows,
        ["nodes", "latency_us", "speedup"],
    )
    lines = [text, "", f"paper speedups (1/8->4 nodes): {PAPER_TABLE12}"]

    # latency falls as resources grow; best config well below baseline
    lat = [results[n].seconds for n in NODE_SWEEP]
    assert min(lat[1:]) < lat[0], "latency must fall with added resources"
    speedup = base / min(lat)
    benchmark.extra_info["latency_speedup"] = speedup
    lines.append(f"best measured latency speedup: {speedup:.2f}x")
    assert speedup > 1.5
    save_results("fig11_partial_match", "\n".join(lines))


@pytest.mark.benchmark(group="fig11")
def test_fig11_alert_correctness_under_load(benchmark, save_results):
    """Streamed fast (overlapping records), every *sequentially valid*
    alert still fires; extra alerts may appear only from overlap races the
    oracle defines away — with per-record serial gaps there are none."""
    records = make_workload(150, n_edge_types=3, seed=5)

    def run_one():
        return run_partial_match(
            records, PATTERNS, nodes=4, gap_cycles=40_000.0
        )

    rec = run_once(benchmark, run_one)
    expected = reference_matches(
        [r for r in records], PATTERNS
    )
    got = rec.extra["alerts"]
    benchmark.extra_info["alerts"] = got
    text = (
        f"Partial match alerts at sequential pacing: {got} "
        f"(oracle: {len(expected)})"
    )
    assert got == len(expected)
    save_results("fig11_alerts", text)
