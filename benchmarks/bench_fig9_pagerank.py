"""Figure 9 (left) / Table 8: PageRank strong scaling, 1 -> 256 nodes.

The artifact's Table 8 reports speedups for Erdős–Rényi, Forest Fire,
Twitter, and RMAT s28.  We sweep the same node counts on the scaled
stand-ins (see repro.graph.datasets) and print measured vs paper speedups
plus the rank-agreement shape metric.
"""

from __future__ import annotations

import pytest

from repro.graph import load_dataset
from repro.harness import (
    PR_BFS_NODES,
    run_pagerank,
    shape_agreement,
    shape_summary,
    speedup_table,
    speedups,
    sweep,
)

from conftest import run_once

#: artifact Table 8 (paper-reported speedups)
PAPER_TABLE8 = {
    "erdos-renyi": {1: 1.00, 2: 2.03, 4: 2.17, 8: 2.56, 16: 3.19, 32: 14.19,
                    64: 45.01, 128: 101.60, 256: 191.74},
    "forest-fire": {1: 1.00, 2: 1.99, 4: 2.20, 8: 2.76, 16: 5.25, 32: 14.38,
                    64: 30.48, 128: 54.13, 256: 91.84},
    "twitter": {1: 1.00, 2: 2.18, 4: 2.03, 8: 2.40, 16: 8.63, 32: 20.74,
                64: 42.02, 128: 75.42, 256: 131.37},
    "rmat-s12": {1: 1.00, 2: 2.21, 4: 3.39, 8: 4.03, 16: 5.36, 32: 19.29,
                 64: 50.83, 128: 97.46, 256: 178.21},  # paper: RMAT s28
}

GRAPHS = ("erdos-renyi", "forest-fire", "twitter", "rmat-s12")

#: PR splits to max degree 512 in the paper; scaled with the graphs
SPLIT_MAX_DEGREE = 64


@pytest.mark.benchmark(group="fig9")
def test_fig9_pagerank_strong_scaling(benchmark, save_results):
    def run_sweep():
        series = {}
        for name in GRAPHS:
            graph = load_dataset(name)
            records = sweep(
                run_pagerank,
                PR_BFS_NODES,
                graph=graph,
                max_degree=SPLIT_MAX_DEGREE,
            )
            series[name] = speedups(records)
        return series

    series = run_once(benchmark, run_sweep)

    lines = [
        speedup_table(
            "Figure 9 (left) / Table 8 — PageRank strong scaling "
            "(speedup over 1 node)",
            PR_BFS_NODES,
            series,
            reported=PAPER_TABLE8,
        ),
        "",
    ]
    for name in GRAPHS:
        agreement = shape_agreement(series[name], PAPER_TABLE8[name])
        lines.append(shape_summary(name, series[name], PAPER_TABLE8[name],
                                   agreement))
        benchmark.extra_info[f"{name}_peak_speedup"] = max(
            series[name].values()
        )
        benchmark.extra_info[f"{name}_shape_agreement"] = agreement
        # qualitative reproduction gates: real scaling, positive shape match
        assert max(series[name].values()) > 4.0, name
        assert agreement > 0.5, name
    save_results("fig9_pagerank", "\n".join(lines))
