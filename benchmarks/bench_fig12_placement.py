"""Figure 12: impact of NRnodes in DRAMmalloc on PR and BFS.

"Only a single number was changed in a DRAMmalloc() call to create each
layout!" (§5.3).  Fixed compute nodes; the graph structure's memory
striping sweeps 2 -> 64 nodes (16-fold bandwidth in the paper, which sees
up to 4x PR improvement with tapering gains, and the same trend, less
pronounced, for BFS's frontier)."""

from __future__ import annotations

import pytest

from repro.graph import load_dataset
from repro.harness import run_bfs, run_pagerank, series_table

from conftest import run_once

COMPUTE_NODES = 64
MEM_NODE_SWEEP = (2, 4, 8, 16, 32, 64)


@pytest.mark.benchmark(group="fig12")
def test_fig12_pagerank_placement(benchmark, save_results):
    graph = load_dataset("rmat-s12")

    def run_sweep():
        return {
            m: run_pagerank(
                graph, nodes=COMPUTE_NODES, max_degree=64, mem_nodes=m
            ).seconds
            for m in MEM_NODE_SWEEP
        }

    times = run_once(benchmark, run_sweep)

    base = times[MEM_NODE_SWEEP[0]]
    rows = [(m, times[m] * 1e6, base / times[m]) for m in MEM_NODE_SWEEP]
    text = series_table(
        f"Figure 12 — PR: graph-structure NRnodes sweep "
        f"({COMPUTE_NODES} compute nodes, rmat-s12)",
        rows,
        ["mem_nodes", "time_us", "speedup_vs_2"],
    )
    gain = base / times[MEM_NODE_SWEEP[-1]]
    benchmark.extra_info["pr_placement_gain"] = gain
    lines = [
        text,
        "",
        f"measured gain 2->64 memory nodes: {gain:.2f}x "
        "(paper: up to ~4x for s28, tapering as the memory bottleneck eases)",
    ]
    # the paper's two claims: striping helps, and the benefit tapers
    assert gain > 1.3
    early = times[2] / times[8]
    late = times[16] / times[64]
    lines.append(f"early gain (2->8): {early:.2f}x, late gain (16->64): {late:.2f}x")
    assert early > late, "benefits must taper off"
    save_results("fig12_pagerank", "\n".join(lines))


@pytest.mark.benchmark(group="fig12")
def test_fig12_bfs_placement(benchmark, save_results):
    graph = load_dataset("rmat-s12")

    def run_sweep():
        return {
            m: run_bfs(
                graph, nodes=COMPUTE_NODES, max_degree=128, mem_nodes=m
            ).seconds
            for m in MEM_NODE_SWEEP
        }

    times = run_once(benchmark, run_sweep)
    base = times[MEM_NODE_SWEEP[0]]
    rows = [(m, times[m] * 1e6, base / times[m]) for m in MEM_NODE_SWEEP]
    text = series_table(
        f"Figure 12 — BFS: NRnodes sweep ({COMPUTE_NODES} compute nodes)",
        rows,
        ["mem_nodes", "time_us", "speedup_vs_2"],
    )
    gain = base / times[MEM_NODE_SWEEP[-1]]
    benchmark.extra_info["bfs_placement_gain"] = gain
    lines = [
        text,
        "",
        f"measured gain 2->64: {gain:.2f}x (paper: same trend as PR, "
        "less pronounced)",
    ]
    assert gain > 1.1
    save_results("fig12_bfs", "\n".join(lines))
