"""Figure 10 / Table 11: Ingestion (TFORM + graph construction) scaling.

The paper streams CSV at four dataset sizes (0.01x .. 2x) and shows:
larger inputs sustain scaling to more nodes; the smallest input saturates
almost immediately (7.5x at 2 nodes, flat after).  We reproduce the series
with synthetic WF2-style record streams whose sizes keep the same ratios.
"""

from __future__ import annotations

import pytest

from repro.apps import make_workload
from repro.harness import run_ingestion, series_table, speedups, sweep

from conftest import run_once

#: artifact Table 11 (speedups; blank cells = not run in the paper either)
PAPER_TABLE11 = {
    "data 0.01x": {1: 1.00, 2: 7.52, 4: 7.47, 8: 7.49},
    "data 0.1x": {1: 1.00, 2: 16.27, 4: 31.00, 8: 57.20, 16: 70.23, 32: 72.52},
    "data": {1: 1.00, 2: 4.65, 4: 23.99, 8: 68.51, 16: 125.69, 32: 219.94,
             64: 344.23, 128: 619.65, 256: 657.39},
    "data 2x": {1: 1.00, 2: 1.57, 4: 7.43, 8: 43.07, 16: 133.13, 32: 243.78,
                64: 431.71, 128: 679.32, 256: 1178.20},
}

#: record counts per multiplier (paper ratios 0.01 : 0.1 : 1 : 2) and the
#: node subset each size is swept over (the paper stops small inputs early)
SIZES = {
    "data 0.01x": (160, (1, 2, 4, 8)),
    "data 0.1x": (1600, (1, 2, 4, 8, 16, 32)),
    "data": (8000, (1, 2, 4, 8, 16, 32, 64, 128, 256)),
    "data 2x": (16000, (1, 2, 4, 8, 16, 32, 64, 128, 256)),
}

#: parse granularity: small blocks keep block-parallelism ahead of the
#: lane count at the largest configurations
BLOCK_WORDS = 16


@pytest.mark.benchmark(group="fig10")
def test_fig10_ingestion_scaling(benchmark, save_results):
    workloads = {
        name: make_workload(n, seed=11) for name, (n, _) in SIZES.items()
    }

    def run_sweep():
        series = {}
        for name, (n, nodes) in SIZES.items():
            records = sweep(
                run_ingestion, nodes, records=workloads[name],
                block_words=BLOCK_WORDS,
            )
            for rec in records:
                assert rec.extra["records"] == len(workloads[name])
            series[name] = speedups(records)
        return series

    series = run_once(benchmark, run_sweep)

    rows = []
    all_nodes = sorted({n for s in series.values() for n in s})
    for n in all_nodes:
        rows.append(
            (n, *(series[name].get(n, float("nan")) for name in SIZES))
        )
    text = series_table(
        "Figure 10 / Table 11 — Ingestion speedup vs nodes",
        rows,
        ["nodes", *SIZES],
    )
    lines = [text, ""]
    # qualitative gates matching the paper's shape:
    # 1) the smallest input saturates early (no real gain past 2 nodes)
    small = series["data 0.01x"]
    assert max(small.values()) < 4.0
    # 2) larger inputs scale further (the paper's 7.5 < 72 < 657 < 1178)
    peaks = {name: max(s.values()) for name, s in series.items()}
    assert peaks["data 2x"] >= peaks["data"] >= peaks["data 0.01x"]
    assert peaks["data 2x"] > 5.0
    lines.append(f"peaks: { {k: round(v, 1) for k, v in peaks.items()} }")
    lines.append(
        "paper peaks: 7.5x (0.01x), 72.5x (0.1x), 657x (1x), 1178x (2x)"
    )
    for name, peak in peaks.items():
        benchmark.extra_info[f"{name}_peak"] = peak
    save_results("fig10_ingestion", "\n".join(lines))


@pytest.mark.benchmark(group="fig10")
def test_fig10_throughput_metric(benchmark, save_results):
    """The paper's headline: records/s (76.8 TB/s at 256 nodes on the real
    machine).  We report our simulated records/s at the largest config to
    document the scale gap."""
    records = make_workload(8000, seed=11)

    def run_one():
        return run_ingestion(records, nodes=64, block_words=BLOCK_WORDS)

    rec = run_once(benchmark, run_one)
    rps = rec.metric
    benchmark.extra_info["records_per_second"] = rps
    text = (
        "Ingestion throughput at 64 simulated nodes:\n"
        f"  {rps:.3e} records/s = {rps * 64 / 1e12:.4f} TB/s "
        "(paper: 1200 GigaRecords/s = 76.8 TB/s at 256 full-size nodes)"
    )
    assert rps > 0
    save_results("fig10_throughput", text)
