"""CI smoke: batched label-homogeneous dispatch is bit-exact.

Runs one fixed seeded PageRank workload four ways — batch off and on,
each under a sequential and a sharded drain — and asserts that every
always-on scalar counter except the batch counters themselves, the host
mailbox, and the functional output are identical.  Batching replaces N
interpreter passes over same-label reduce records with one array pass;
each record still pays its own Table-2 lane cost, injection occupancy,
and float-accumulation order, so any drift here is a correctness bug,
not a tuning artifact.  The batch counters must also satisfy record
conservation: ``records_batched + events_interpreted ==
events_executed``.

Sharded drains disarm the parking gate (records fall back to the
per-event interpreter), so the ``--shards`` runs double as proof that
``batch_dispatch=True`` is inert wherever the batch path cannot prove
itself safe.

Usage::

    PYTHONPATH=src python benchmarks/batch_smoke.py [--shards 2]
"""

from __future__ import annotations

import argparse
import time

#: counters that partition differently when batching is on; stripped
#: before the cross-mode fingerprint comparison, then checked for
#: record conservation
BATCH_KEYS = ("batches_executed", "records_batched", "events_interpreted")


def run_once(batch: bool, shards: int = 1):
    from repro.apps.pagerank import PageRankApp
    from repro.graph.generators import rmat
    from repro.harness.runner import BENCH_BLOCK_SIZE, bench_config
    from repro.udweave import UpDownRuntime

    graph = rmat(9, seed=7)
    rt = UpDownRuntime(
        bench_config(4, batch_dispatch=batch), shards=shards
    )
    app = PageRankApp(rt, graph, block_size=BENCH_BLOCK_SIZE)
    t0 = time.perf_counter()
    try:
        res = app.run(iterations=2)
    finally:
        rt.shutdown()
    seconds = time.perf_counter() - t0
    mailbox = [(t, rec.label, rec.operands) for t, rec in rt.sim.host_inbox]
    snapshot = rt.sim.stats.scalar_snapshot()
    return {
        "fingerprint": {
            k: v for k, v in snapshot.items() if k not in BATCH_KEYS
        },
        "batch": {k: snapshot.get(k, 0) for k in BATCH_KEYS},
        "events_executed": snapshot["events_executed"],
        "mailbox": mailbox,
        "ranks": list(res.ranks),
        "seconds": seconds,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--shards",
        type=int,
        default=2,
        help="shard count for the batching-under-sharding runs",
    )
    args = parser.parse_args(argv)

    off = run_once(batch=False)
    on = run_once(batch=True)
    off_sharded = run_once(batch=False, shards=args.shards)
    on_sharded = run_once(batch=True, shards=args.shards)

    failures = []
    variants = (
        ("batch on", on),
        (f"batch off shards={args.shards}", off_sharded),
        (f"batch on shards={args.shards}", on_sharded),
    )
    for name, run in variants:
        if run["fingerprint"] != off["fingerprint"]:
            diff = {
                k: (off["fingerprint"][k], run["fingerprint"][k])
                for k in off["fingerprint"]
                if off["fingerprint"][k] != run["fingerprint"].get(k)
            }
            failures.append(f"{name}: scalar fingerprint diverged: {diff}")
        if run["mailbox"] != off["mailbox"]:
            failures.append(f"{name}: host mailbox diverged")
        if run["ranks"] != off["ranks"]:
            failures.append(f"{name}: functional output (ranks) diverged")
        conserved = (
            run["batch"]["records_batched"]
            + run["batch"]["events_interpreted"]
        )
        if conserved != run["events_executed"]:
            failures.append(
                f"{name}: record conservation broken — "
                f"{run['batch']} vs events_executed="
                f"{run['events_executed']}"
            )
    if on["batch"]["records_batched"] == 0:
        failures.append("batching never fired — the smoke lost its subject")
    for name, run in (
        ("batch off", off),
        (f"batch off shards={args.shards}", off_sharded),
        (f"batch on shards={args.shards}", on_sharded),
    ):
        if run["batch"]["records_batched"] or run["batch"]["batches_executed"]:
            failures.append(
                f"{name}: batch path fired where it must be disabled — "
                f"{run['batch']}"
            )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    fp = off["fingerprint"]
    print(
        f"batch smoke OK: off / on x shards 1/{args.shards} bit-identical "
        f"({fp['events_executed']:,} events, final_tick={fp['final_tick']}); "
        f"{on['batch']['records_batched']:,} of "
        f"{on['events_executed']:,} records batched into "
        f"{on['batch']['batches_executed']:,} batches; "
        f"off {off['seconds']:.2f}s, on {on['seconds']:.2f}s"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
