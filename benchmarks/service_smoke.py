"""CI smoke: a short service soak's SLO verdict is deterministic.

Runs one fixed seeded steady-QPS soak under a deterministic 1% message
drop plan with ack/retry delivery, three times — twice sequentially with
the same seed, once with ``shards=2`` — and asserts:

* the healthy machine meets its SLO (the verdict passes, and the plan
  actually dropped messages, so the pass is earned, not vacuous);
* the two same-seed runs produce byte-identical verdicts and result
  fingerprints (latency histograms, per-request statuses, admission
  counters, transport give-up set);
* the sharded run reproduces the sequential one exactly — conservative
  sharding is bit-exact even for interleaved open-loop stepping.

Any mismatch is a determinism regression: exit 1 with the differing
verdicts printed for triage.

Usage::

    PYTHONPATH=src python benchmarks/service_smoke.py [--drop-rate 0.01]
"""

from __future__ import annotations

import argparse
import json
import time


def run_once(drop_rate: float, shards: int = 1):
    from repro.faults import FaultPlan
    from repro.harness import run_service
    from repro.service import SLOSpec, ServiceWorkload, SteadyArrivals

    wl = ServiceWorkload(seed=21, n_vertices=64)
    reqs = wl.requests(SteadyArrivals(gap_cycles=2500.0).times(80))
    t0 = time.perf_counter()
    rec = run_service(
        reqs,
        nodes=4,
        slo=SLOSpec(),
        faults=FaultPlan(seed=13, drop_rate=drop_rate),
        reliable=True,
        watchdog_cycles=100_000.0,
        shards=shards,
    )
    svc = rec.extra["service"]
    return svc, time.perf_counter() - t0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--drop-rate", type=float, default=0.01)
    args = parser.parse_args(argv)

    first, t1 = run_once(args.drop_rate)
    rerun, t2 = run_once(args.drop_rate)
    sharded, t3 = run_once(args.drop_rate, shards=2)

    failures = []
    if first.fault_counts.get("msg_drop", 0) == 0:
        failures.append(
            "the fault plan dropped nothing — the soak is vacuous; "
            "raise --drop-rate"
        )
    if not first.verdict.passed:
        failures.append(
            f"healthy soak failed its SLO: {first.verdict.violations}"
        )
    if rerun.fingerprint() != first.fingerprint():
        failures.append("same-seed rerun produced a different fingerprint")
    if sharded.fingerprint() != first.fingerprint():
        failures.append("shards=2 produced a different fingerprint")
    if not (
        first.verdict.to_dict()
        == rerun.verdict.to_dict()
        == sharded.verdict.to_dict()
    ):
        failures.append("verdicts differ across same-seed runs")

    if failures:
        for f in failures:
            print(f"FAIL: {f}")
        for name, svc in (("run1", first), ("run2", rerun), ("shards2", sharded)):
            print(f"--- {name} verdict ---")
            print(json.dumps(svc.verdict.to_dict(), indent=2))
        return 1
    print(
        f"service smoke OK: verdict passed with "
        f"{first.fault_counts.get('msg_drop', 0)} drops recovered "
        f"({first.status_counts['ok']} ok / "
        f"{first.status_counts['deadline_miss']} miss / "
        f"{first.status_counts['lost']} lost); same-seed rerun and "
        f"shards=2 bit-identical "
        f"({t1:.1f}s / {t2:.1f}s / {t3:.1f}s host)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
