"""Shared benchmark plumbing.

Each benchmark regenerates one paper table/figure: it runs the node sweep
once (via ``benchmark.pedantic(..., rounds=1)`` — the timing of interest
is *simulated* seconds, not host seconds), prints the paper-style table,
and writes it to ``benchmarks/results/<name>.txt`` so EXPERIMENTS.md can
quote the output.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture
def save_results():
    """Write a named result blob; returns the path."""

    def save(name: str, text: str) -> Path:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")
        return path

    return save


def run_once(benchmark, fn):
    """Run a sweep exactly once under pytest-benchmark's timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
