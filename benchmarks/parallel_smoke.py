"""CI smoke: conservative parallel execution is bit-exact.

Runs one fixed seeded PageRank workload twice — sequential, then sharded
across forked worker processes — and asserts the full scalar fingerprint
(every always-on counter, including ``final_tick``), the host mailbox,
and the functional output are identical.  This is the cheap end-to-end
version of ``tests/integration/test_parallel_parity.py`` that CI runs on
every push: if the conservative protocol ever drifts from the sequential
drain, this exits non-zero before a human has to diff goldens.

Usage::

    PYTHONPATH=src python benchmarks/parallel_smoke.py [--shards 2]
"""

from __future__ import annotations

import argparse
import time


def run_once(shards: int, parallel: bool):
    from repro.apps.pagerank import PageRankApp
    from repro.graph.generators import rmat
    from repro.harness.runner import BENCH_BLOCK_SIZE, bench_config
    from repro.udweave import UpDownRuntime

    graph = rmat(9, seed=7)
    rt = UpDownRuntime(bench_config(4), shards=shards, parallel=parallel)
    app = PageRankApp(rt, graph, block_size=BENCH_BLOCK_SIZE)
    t0 = time.perf_counter()
    try:
        res = app.run(iterations=2)
    finally:
        rt.shutdown()
    seconds = time.perf_counter() - t0
    mailbox = [(t, rec.label, rec.operands) for t, rec in rt.sim.host_inbox]
    return {
        "fingerprint": rt.sim.stats.scalar_snapshot(),
        "mailbox": mailbox,
        "ranks": list(res.ranks),
        "seconds": seconds,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--shards", type=int, default=2, help="shard count for the parallel run"
    )
    args = parser.parse_args(argv)

    seq = run_once(shards=1, parallel=False)
    par = run_once(shards=args.shards, parallel=True)

    failures = []
    if par["fingerprint"] != seq["fingerprint"]:
        diff = {
            k: (seq["fingerprint"][k], par["fingerprint"][k])
            for k in seq["fingerprint"]
            if seq["fingerprint"][k] != par["fingerprint"].get(k)
        }
        failures.append(f"scalar fingerprint diverged: {diff}")
    if par["mailbox"] != seq["mailbox"]:
        failures.append(
            f"host mailbox diverged ({len(seq['mailbox'])} sequential "
            f"entries vs {len(par['mailbox'])} parallel)"
        )
    if par["ranks"] != seq["ranks"]:
        failures.append("functional output (ranks) diverged")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    fp = seq["fingerprint"]
    print(
        f"parallel smoke OK: {args.shards} forked shards bit-identical to "
        f"sequential ({fp['events_executed']:,} events, "
        f"final_tick={fp['final_tick']}); "
        f"sequential {seq['seconds']:.2f}s, parallel {par['seconds']:.2f}s"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
