"""CI smoke: conservative parallel execution is bit-exact (and fast).

Runs one fixed seeded PageRank workload twice — sequential, then sharded
across forked worker processes — and asserts the full scalar fingerprint
(every always-on counter, including ``final_tick``), the host mailbox,
and the functional output are identical.  This is the cheap end-to-end
version of ``tests/integration/test_parallel_parity.py`` that CI runs on
every push: if the conservative protocol ever drifts from the sequential
drain, this exits non-zero before a human has to diff goldens.

With ``--min-speedup`` it also asserts the wall-clock ratio
``sequential / parallel`` — the perf contract of the shared-memory
boundary transport.  Only ask for a speedup on a host with at least as
many cores as shards (the multi-core CI leg does); on a starved host the
flag fails fast with a clear message instead of a flaky ratio.

Either way the run dumps the coordinator's transport metrics (boundary
bytes shipped, ring overflows, barrier wait, adaptive-window histogram)
to ``PARALLEL_hub_metrics.json`` next to the repo root, so a failing CI
leg uploads exactly the numbers needed to diagnose it.

Usage::

    PYTHONPATH=src python benchmarks/parallel_smoke.py [--shards 2]
        [--min-speedup 1.5] [--metrics-out PARALLEL_hub_metrics.json]
"""

from __future__ import annotations

import argparse
import json
import os
import time


def run_once(shards: int, parallel: bool):
    from repro.apps.pagerank import PageRankApp
    from repro.graph.generators import rmat
    from repro.harness.runner import BENCH_BLOCK_SIZE, bench_config
    from repro.udweave import UpDownRuntime

    graph = rmat(9, seed=7)
    rt = UpDownRuntime(bench_config(4), shards=shards, parallel=parallel)
    app = PageRankApp(rt, graph, block_size=BENCH_BLOCK_SIZE)
    t0 = time.perf_counter()
    try:
        res = app.run(iterations=2)
    finally:
        rt.shutdown()
    seconds = time.perf_counter() - t0
    mailbox = [(t, rec.label, rec.operands) for t, rec in rt.sim.host_inbox]
    return {
        "fingerprint": rt.sim.stats.scalar_snapshot(),
        "mailbox": mailbox,
        "ranks": list(res.ranks),
        "seconds": seconds,
        "hub_metrics": rt.sim.parallel_metrics(),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--shards", type=int, default=2, help="shard count for the parallel run"
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="fail unless sequential/parallel wall-clock >= this ratio "
        "(only meaningful with >= --shards physical cores)",
    )
    parser.add_argument(
        "--metrics-out",
        default="PARALLEL_hub_metrics.json",
        help="where to dump the parallel coordinator's transport metrics",
    )
    args = parser.parse_args(argv)

    cores = os.cpu_count() or 1
    if args.min_speedup is not None and cores < args.shards:
        print(
            f"FAIL: --min-speedup {args.min_speedup} requested but this "
            f"host has {cores} core(s) for {args.shards} shards; run the "
            f"speedup assertion on a multi-core runner"
        )
        return 1

    seq = run_once(shards=1, parallel=False)
    par = run_once(shards=args.shards, parallel=True)
    speedup = (
        seq["seconds"] / par["seconds"] if par["seconds"] > 0 else float("inf")
    )

    report = {
        "shards": args.shards,
        "cores": cores,
        "sequential_seconds": round(seq["seconds"], 3),
        "parallel_seconds": round(par["seconds"], 3),
        "speedup": round(speedup, 3),
        "events_executed": seq["fingerprint"]["events_executed"],
        "hub": par["hub_metrics"],
    }
    with open(args.metrics_out, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")

    failures = []
    if par["fingerprint"] != seq["fingerprint"]:
        diff = {
            k: (seq["fingerprint"][k], par["fingerprint"][k])
            for k in seq["fingerprint"]
            if seq["fingerprint"][k] != par["fingerprint"].get(k)
        }
        failures.append(f"scalar fingerprint diverged: {diff}")
    if par["mailbox"] != seq["mailbox"]:
        failures.append(
            f"host mailbox diverged ({len(seq['mailbox'])} sequential "
            f"entries vs {len(par['mailbox'])} parallel)"
        )
    if par["ranks"] != seq["ranks"]:
        failures.append("functional output (ranks) diverged")
    hub = par["hub_metrics"] or {}
    if hub.get("ring_overflows"):
        # the acceptance bar: default ring capacity absorbs the whole
        # boundary stream on the bench workloads
        failures.append(
            f"ring transport overflowed {hub['ring_overflows']} frame(s) "
            f"onto the spill path at the default parallel_ring_kib"
        )
    if args.min_speedup is not None and speedup < args.min_speedup:
        failures.append(
            f"wall-clock speedup {speedup:.2f}x below the required "
            f"{args.min_speedup:.2f}x (sequential {seq['seconds']:.2f}s, "
            f"parallel {par['seconds']:.2f}s on {cores} cores; hub "
            f"metrics in {args.metrics_out})"
        )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    fp = seq["fingerprint"]
    print(
        f"parallel smoke OK: {args.shards} forked shards bit-identical to "
        f"sequential ({fp['events_executed']:,} events, "
        f"final_tick={fp['final_tick']}); "
        f"sequential {seq['seconds']:.2f}s, parallel {par['seconds']:.2f}s "
        f"({speedup:.2f}x, {hub.get('windows', 0)} windows, "
        f"{hub.get('boundary_bytes', 0):,} boundary bytes by ring, "
        f"{hub.get('ring_overflows', 0)} overflows)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
