"""Figure 9 (right) / Table 10: Triangle Counting strong scaling to 1024
nodes.

Table 10's qualitative content: friendster and RMAT keep scaling to 1024
nodes (790x / 899x); com-orkut peaks around 256-512 and regresses;
soc-livej saturates early (~57x at 256, falling after).  The mechanism is
work volume vs machine size: TC work ~ Σ deg², so denser/bigger graphs
scale further.

TC's reduce streams both endpoint neighbor lists (quadratic-ish work), so
the stand-ins here are one scale notch smaller than the PR/BFS ones and
the sweep uses the artifact's geometric node subset.
"""

from __future__ import annotations

import pytest

from repro.baselines import triangle_count
from repro.graph import rmat
from repro.harness import (
    run_triangle_count,
    shape_agreement,
    shape_summary,
    speedup_table,
    speedups,
    sweep,
)

from conftest import run_once

#: artifact Table 10, on the node subset we sweep
PAPER_TABLE10 = {
    "friendster": {1: 1.0, 4: 3.98, 16: 15.71, 64: 61.55, 256: 232.66,
                   1024: 790.82},
    "soc-livej": {1: 1.0, 4: 3.99, 16: 13.66, 64: 37.11, 256: 56.88,
                  1024: 48.24},
    "rmat-s10": {1: 1.0, 4: 3.98, 16: 15.53, 64: 59.47, 256: 210.70,
                 1024: 665.18},  # paper: RMAT s25
}

NODE_SWEEP = (1, 4, 16, 64, 256, 1024)

#: smaller TC-specific stand-ins (TC work is ~Σ deg², see module docstring)
TC_GRAPHS = {
    "friendster": lambda: rmat(10, edge_factor=14, seed=104),
    "soc-livej": lambda: rmat(8, edge_factor=14, seed=101),
    "rmat-s10": lambda: rmat(9, edge_factor=16, seed=48),
}


@pytest.mark.benchmark(group="fig9")
def test_fig9_tc_strong_scaling(benchmark, save_results):
    graphs = {name: build() for name, build in TC_GRAPHS.items()}
    expected = {name: triangle_count(g) for name, g in graphs.items()}

    def run_sweep():
        series = {}
        for name, graph in graphs.items():
            records = sweep(run_triangle_count, NODE_SWEEP, graph=graph)
            for rec in records:
                assert rec.extra["triangles"] == expected[name], name
            series[name] = speedups(records)
        return series

    series = run_once(benchmark, run_sweep)

    lines = [
        speedup_table(
            "Figure 9 (right) / Table 10 — Triangle Counting strong "
            "scaling (speedup over 1 node)",
            NODE_SWEEP,
            series,
            reported=PAPER_TABLE10,
        ),
        "",
    ]
    for name in graphs:
        agreement = shape_agreement(series[name], PAPER_TABLE10[name])
        lines.append(
            shape_summary(name, series[name], PAPER_TABLE10[name], agreement)
        )
        benchmark.extra_info[f"{name}_peak_speedup"] = max(
            series[name].values()
        )
        if name != "soc-livej":
            assert agreement > 0.4, name
    # Table 10's qualitative claims:
    # (1) friendster (largest) scales furthest, livej least;
    peaks = {n: max(series[n].values()) for n in graphs}
    assert peaks["friendster"] >= peaks["soc-livej"]
    # (2) livej *saturates*: its peak sits at a smaller node count than
    #     friendster's, and its tail falls off the peak (paper: 56.9 at
    #     256 -> 48.2 at 1024).  Rank agreement is too brittle for a
    #     6-point series with a non-monotone tail, hence the direct check.
    argmax = {
        n: max(series[n], key=series[n].get) for n in graphs
    }
    assert argmax["soc-livej"] <= argmax["friendster"]
    tail = series["soc-livej"][NODE_SWEEP[-1]]
    assert tail < peaks["soc-livej"] * 1.01
    lines.append(f"peak ordering: {sorted(peaks, key=peaks.get)}")
    lines.append(f"saturation points (nodes at peak): {argmax}")
    save_results("fig9_tc", "\n".join(lines))


@pytest.mark.benchmark(group="fig9")
def test_tc_pbmw_variant_matches_block(benchmark, save_results):
    """§4.3.3: the PBMW TC variant gives the same count; the paper found
    the secondary balancing "was not required" once the reduce was
    stream-based — we check PBMW is within ~25% of Block."""
    graph = rmat(8, edge_factor=16, seed=48)

    def run_pair():
        block = run_triangle_count(graph, nodes=16, pbmw=False)
        pbmw = run_triangle_count(graph, nodes=16, pbmw=True)
        return block, pbmw

    block, pbmw = run_once(benchmark, run_pair)
    assert block.extra["triangles"] == pbmw.extra["triangles"]
    ratio = pbmw.seconds / block.seconds
    benchmark.extra_info["pbmw_over_block"] = ratio
    text = (
        "TC binding ablation (16 nodes, rmat s8):\n"
        f"  Block: {block.seconds:.3e}s   PBMW: {pbmw.seconds:.3e}s   "
        f"ratio {ratio:.2f} (paper: PBMW no longer required, §4.3.3)"
    )
    assert 0.5 < ratio < 1.6
    save_results("fig9_tc_pbmw", text)
