"""Host-side simulator throughput benchmark (events/second).

Every paper figure is gated on how fast the pure-Python DES drains its
event heap — event handlers are 10-100 instructions (paper §2.1.1), so a
single Figure 9 sweep point executes hundreds of thousands of tiny events
and per-event Python overhead dominates wall-clock.  This benchmark pins
that number down: it runs fixed seeded PageRank / BFS / Triangle-Counting
workloads, times only the simulation drain (``app.run``), and reports
host events/second per workload.

Results land in ``BENCH_simcore.json`` at the repo root, keyed by a label
(``--label before`` / ``--label after``), so a PR that touches the hot
path records its own before/after trajectory and later PRs have a
baseline to regress against.

Usage::

    PYTHONPATH=src python benchmarks/bench_simcore.py --label after
    PYTHONPATH=src python benchmarks/bench_simcore.py --quick   # CI smoke
    PYTHONPATH=src python benchmarks/bench_simcore.py \
        --label shards4 --shards 4 --parallel   # conservative parallel mode
    PYTHONPATH=src python benchmarks/bench_simcore.py \
        --label coalesced --coalesce   # packet-coalescing fabric
    PYTHONPATH=src python benchmarks/bench_simcore.py \
        --label batched --batch   # batched label-homogeneous dispatch

Determinism: each workload also records ``final_tick`` and
``events_executed``; those must be bit-identical across labels — a
throughput win that changes the simulated result is a bug, not a win.
The same holds across ``--shards`` values: conservative sharding is
bit-exact, so a shards entry whose fingerprint differs from the
sequential entry is a correctness failure, not a performance data point.
Each entry records ``cpu_count`` — parallel speedups are only meaningful
when the host actually has cores to run the shard workers on.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_simcore.json"

#: (name, graph scale, machine nodes, app kwargs) — all seeds fixed.
FULL_WORKLOADS = (
    ("pagerank", 11, 16, {"iterations": 2}),
    ("bfs", 11, 16, {"root": 0}),
    ("tc", 9, 16, {}),
)
QUICK_WORKLOADS = (
    ("pagerank", 8, 4, {"iterations": 1}),
    ("bfs", 8, 4, {"root": 0}),
    ("tc", 7, 4, {}),
)

GRAPH_SEED = 7


def _build(
    name: str,
    scale: int,
    nodes: int,
    shards: int,
    parallel: bool,
    explicit_fault_off: bool = False,
    coalesce: bool = False,
    batch: bool = False,
):
    """Fresh (runtime, app, run_kwargs) — setup cost excluded from timing.

    ``explicit_fault_off`` builds the runtime with the fault subsystem's
    arguments spelled out as disabled (``faults=None, reliable=False,
    watchdog_cycles=None``) instead of omitted — the two must be
    indistinguishable in both results and cost (see ``--fault-guard``).
    """
    from repro.apps.bfs import BFSApp
    from repro.apps.pagerank import PageRankApp
    from repro.apps.triangle import TriangleCountApp
    from repro.graph.generators import rmat
    from repro.harness.runner import BENCH_BLOCK_SIZE, bench_config
    from repro.udweave import UpDownRuntime

    graph = rmat(scale, seed=GRAPH_SEED)
    fault_kw = (
        dict(faults=None, reliable=False, watchdog_cycles=None)
        if explicit_fault_off
        else {}
    )
    rt = UpDownRuntime(
        bench_config(nodes, coalescing=coalesce, batch_dispatch=batch),
        shards=shards,
        parallel=parallel,
        **fault_kw,
    )
    if name == "pagerank":
        app = PageRankApp(rt, graph, block_size=BENCH_BLOCK_SIZE)
    elif name == "bfs":
        app = BFSApp(rt, graph, block_size=BENCH_BLOCK_SIZE)
    elif name == "tc":
        app = TriangleCountApp(rt, graph, block_size=BENCH_BLOCK_SIZE)
    else:  # pragma: no cover - workload table is static
        raise ValueError(f"unknown workload {name!r}")
    return rt, app


def run_workload(
    name: str,
    scale: int,
    nodes: int,
    kwargs,
    repeats: int,
    shards: int = 1,
    parallel: bool = False,
    explicit_fault_off: bool = False,
    coalesce: bool = False,
    batch: bool = False,
):
    """Best-of-``repeats`` events/sec for one workload; returns a dict."""
    best = None
    fingerprint = None
    for _ in range(repeats):
        rt, app = _build(
            name, scale, nodes, shards, parallel, explicit_fault_off,
            coalesce, batch,
        )
        t0 = time.perf_counter()
        try:
            res = app.run(**kwargs)
        finally:
            rt.shutdown()
        seconds = time.perf_counter() - t0
        stats = res.stats
        fp = (stats.final_tick, stats.events_executed, stats.messages_sent)
        if fingerprint is None:
            fingerprint = fp
        elif fp != fingerprint:
            raise RuntimeError(
                f"{name}: non-deterministic run — {fp} != {fingerprint}"
            )
        # events_executed counts every record individually — the batch
        # executor credits each parked record it replays, so a batch of
        # N reduce records is N events here, never 1 (a one-batch-one-
        # event ledger would fabricate its own speedup).
        eps = stats.events_executed / seconds if seconds > 0 else 0.0
        if best is None or eps > best["events_per_second"]:
            best = {
                "graph_scale": scale,
                "machine_nodes": nodes,
                "events_executed": stats.events_executed,
                "messages_sent": stats.messages_sent,
                "final_tick": stats.final_tick,
                "records_batched": stats.records_batched,
                "batches_executed": stats.batches_executed,
                "wall_seconds": round(seconds, 4),
                "events_per_second": round(eps, 1),
            }
            # forked-worker runs: ship the coordinator's transport
            # numbers alongside the timing (they explain it — barrier
            # wait and boundary bytes are where parallel time goes)
            hub = rt.sim.parallel_metrics()
            if hub is not None:
                hub = dict(hub)
                hub["barrier_wait_s"] = round(hub["barrier_wait_s"], 4)
                best["hub"] = hub
    return best


def run_fault_guard(workloads, repeats: int, tolerance: float) -> int:
    """Perf guard: a runtime with the fault subsystem explicitly disabled
    must be indistinguishable from one that never mentions it.

    The healthy send path gates all fault/transport work behind two
    pointer tests, so ``faults=None`` must keep (a) every fingerprint
    counter bit-identical and (b) drain cost within ``tolerance`` of the
    baseline.  The cost metric is **process CPU time** (best-of-
    ``repeats``, variants interleaved), not wall-clock — shared CI
    runners swing wall-clock by double digits between identical runs,
    which would drown the signal this guard exists to catch.  A future
    change that makes the disabled subsystem cost real cycles fails
    here before it lands.
    """

    def sample(explicit_fault_off):
        rt, app = _build(
            name, scale, nodes, 1, False, explicit_fault_off
        )
        c0 = time.process_time()
        try:
            res = app.run(**kwargs)
        finally:
            rt.shutdown()
        cpu = time.process_time() - c0
        stats = res.stats
        return {
            "final_tick": stats.final_tick,
            "events_executed": stats.events_executed,
            "messages_sent": stats.messages_sent,
            "cpu_seconds": cpu,
        }

    failures = []
    for name, scale, nodes, kwargs in workloads:
        # interleave the two variants so frequency scaling / cache state
        # drift hits both sides of the comparison equally
        base = off = None
        for _ in range(repeats):
            s = sample(explicit_fault_off=False)
            if base is None or s["cpu_seconds"] < base["cpu_seconds"]:
                base = s
            s = sample(explicit_fault_off=True)
            if off is None or s["cpu_seconds"] < off["cpu_seconds"]:
                off = s
        fp_keys = ("final_tick", "events_executed", "messages_sent")
        fp_base = {k: base[k] for k in fp_keys}
        fp_off = {k: off[k] for k in fp_keys}
        if fp_off != fp_base:
            failures.append(
                f"{name}: faults=None changed the simulation — "
                f"{fp_base} != {fp_off}"
            )
        overhead = (
            off["cpu_seconds"] / base["cpu_seconds"] - 1.0
            if base["cpu_seconds"]
            else 0.0
        )
        verdict = "ok" if overhead <= tolerance else "SLOW"
        print(
            f"{name:10} baseline {base['cpu_seconds']:7.3f}s CPU, "
            f"faults=None {off['cpu_seconds']:7.3f}s CPU "
            f"({overhead:+.1%}) {verdict}"
        )
        if overhead > tolerance:
            failures.append(
                f"{name}: faults=None costs {overhead:.1%} CPU "
                f"(tolerance {tolerance:.0%})"
            )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print(
        f"fault guard OK: disabled fault subsystem is free "
        f"(fingerprints bit-identical, CPU within {tolerance:.0%})"
    )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--label",
        default="after",
        help="entry name in the JSON (e.g. 'before' / 'after')",
    )
    parser.add_argument(
        "--repeats", type=int, default=2, help="best-of-N timing repeats"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small workloads for CI smoke runs",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=1,
        help="conservative DES shards (1 = sequential drain)",
    )
    parser.add_argument(
        "--parallel",
        action="store_true",
        help="run shards in forked worker processes (requires --shards > 1)",
    )
    parser.add_argument(
        "--coalesce",
        action="store_true",
        help="enable the packet-coalescing fabric (coalescing=True); "
        "fingerprints must stay bit-identical to uncoalesced entries — "
        "coalescing only removes host-side heap traffic, never cost",
    )
    parser.add_argument(
        "--batch",
        dest="batch",
        action="store_true",
        default=False,
        help="enable batched label-homogeneous dispatch "
        "(batch_dispatch=True); fingerprints must stay bit-identical to "
        "unbatched entries — batching removes host-side interpreter "
        "passes, never simulated cost",
    )
    parser.add_argument(
        "--no-batch",
        dest="batch",
        action="store_false",
        help="force the per-event interpreter path (the default)",
    )
    parser.add_argument(
        "--output", type=Path, default=DEFAULT_OUTPUT, help="JSON output path"
    )
    parser.add_argument(
        "--fault-guard",
        action="store_true",
        help="verify faults=None is zero-cost (bit-identical fingerprints, "
        "throughput within --guard-tolerance) instead of recording timings",
    )
    parser.add_argument(
        "--guard-tolerance",
        type=float,
        default=0.05,
        help="allowed fractional throughput loss under --fault-guard "
        "(the default absorbs shared-runner timing noise — on a quiet "
        "host, tighten to 0.01; the fingerprint comparison is exact "
        "regardless)",
    )
    args = parser.parse_args(argv)

    if args.parallel and args.shards < 2:
        parser.error("--parallel requires --shards of at least 2")
    cores = os.cpu_count() or 1
    if args.parallel and cores < args.shards:
        # A 1-core container timing N forked workers measures scheduler
        # thrash, not the simulator; record an explicit skip entry so
        # readers of the JSON see *why* the number is absent instead of
        # a misleading slowdown.
        entry = {
            "python": platform.python_version(),
            "quick": args.quick,
            "shards": args.shards,
            "parallel": True,
            "cpu_count": cores,
            "skipped": (
                f"skipped ({cores} core{'' if cores == 1 else 's'}): "
                f"{args.shards} forked shard workers need at least "
                f"{args.shards} cores for a meaningful wall-clock number; "
                f"run on a multi-core host (the CI multi-core leg does)"
            ),
            "workloads": {},
        }
        existing = {}
        if args.output.exists():
            existing = json.loads(args.output.read_text())
        existing.setdefault("entries", {})[args.label] = entry
        args.output.write_text(json.dumps(existing, indent=2) + "\n")
        print(entry["skipped"])
        print(f"wrote {args.output}")
        return 0
    workloads = QUICK_WORKLOADS if args.quick else FULL_WORKLOADS
    if args.fault_guard:
        # best-of-3 minimum: the guard compares two identical code paths,
        # so anything it sees beyond noise is a real regression
        return run_fault_guard(
            workloads, max(args.repeats, 3), args.guard_tolerance
        )
    try:
        import numpy
        numpy_version = numpy.__version__
    except ImportError:  # pragma: no cover - numpy is a hard dependency
        numpy_version = None
    entry = {
        "python": platform.python_version(),
        "numpy": numpy_version,
        "quick": args.quick,
        "shards": args.shards,
        "parallel": args.parallel,
        "coalesce": args.coalesce,
        "batch": args.batch,
        "cpu_count": os.cpu_count(),
        "workloads": {},
    }
    if args.repeats < 1:
        parser.error("--repeats must be at least 1")
    for name, scale, nodes, kwargs in workloads:
        result = run_workload(
            name,
            scale,
            nodes,
            kwargs,
            args.repeats,
            shards=args.shards,
            parallel=args.parallel,
            coalesce=args.coalesce,
            batch=args.batch,
        )
        entry["workloads"][name] = result
        print(
            f"{name:10} scale={scale} nodes={nodes}: "
            f"{result['events_executed']:>9,} events in "
            f"{result['wall_seconds']:7.2f}s = "
            f"{result['events_per_second']:>11,.0f} ev/s"
        )

    existing = {}
    if args.output.exists():
        existing = json.loads(args.output.read_text())
    entries = existing.setdefault("entries", {})
    entries[args.label] = entry
    if "before" in entries and "after" in entries:
        speedups = {}
        for name, after in entries["after"]["workloads"].items():
            before = entries["before"]["workloads"].get(name)
            if before and before["events_per_second"]:
                speedups[name] = round(
                    after["events_per_second"] / before["events_per_second"], 2
                )
        existing["speedup_after_over_before"] = speedups
        print("speedups:", speedups)
    if "after" in entries and "coalesced" in entries:
        speedups = {}
        for name, coalesced in entries["coalesced"]["workloads"].items():
            after = entries["after"]["workloads"].get(name)
            if after and after["events_per_second"]:
                speedups[name] = round(
                    coalesced["events_per_second"]
                    / after["events_per_second"],
                    2,
                )
        existing["speedup_coalesced_over_after"] = speedups
        print("coalescing speedups:", speedups)
    if "after" in entries and "batched" in entries:
        speedups = {}
        for name, batched in entries["batched"]["workloads"].items():
            after = entries["after"]["workloads"].get(name)
            if after and after["events_per_second"]:
                if (
                    batched["final_tick"] != after["final_tick"]
                    or batched["events_executed"] != after["events_executed"]
                    or batched["messages_sent"] != after["messages_sent"]
                ):
                    raise RuntimeError(
                        f"{name}: batched fingerprint diverged from 'after' — "
                        "a throughput win that changes the simulation is a "
                        "bug, not a win"
                    )
                speedups[name] = round(
                    batched["events_per_second"]
                    / after["events_per_second"],
                    2,
                )
        existing["speedup_batched_over_after"] = speedups
        print("batching speedups:", speedups)
    args.output.write_text(json.dumps(existing, indent=2) + "\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
