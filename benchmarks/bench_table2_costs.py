"""Table 2: lane operation costs, measured through the simulator.

Micro-programs exercise each operation and the simulated cycle deltas are
checked against Table 2's constants.  The pytest-benchmark timing also
reports the *simulator's* host-side event throughput, the figure that
governs how large an experiment this reproduction can run.
"""

from __future__ import annotations

import pytest

from repro.machine import bench_machine
from repro.udweave import UDThread, UpDownRuntime, event

from conftest import run_once


def _measure_cycles(build):
    """Run a one-event program; return the cycles that event consumed."""
    rt = UpDownRuntime(bench_machine(nodes=1))
    cls = build(rt)
    rt.start(0, f"{cls.__name__}::go")
    stats = rt.run()
    return stats.busy_cycles_by_lane[0], rt.config.costs


@pytest.mark.benchmark(group="table2")
def test_table2_operation_costs(benchmark, save_results):
    def measure_all():
        results = {}

        def baseline(rt):
            @rt.register
            class TBase(UDThread):
                @event
                def go(self, ctx):
                    ctx.yield_terminate()

            return TBase

        base_cycles, costs = _measure_cycles(baseline)
        # dispatch + deallocate
        results["thread create+deallocate"] = (
            base_cycles - costs.event_dispatch,
            costs.thread_create + costs.thread_deallocate,
        )

        def with_send(rt):
            @rt.register
            class TSend(UDThread):
                @event
                def go(self, ctx):
                    ctx.send_event(ctx.runtime.host_evw("x"))
                    ctx.yield_terminate()

            return TSend

        send_cycles, _ = _measure_cycles(with_send)
        results["send message"] = (
            send_cycles - base_cycles,
            costs.send_message,
        )

        def with_sp(rt):
            @rt.register
            class TSp(UDThread):
                @event
                def go(self, ctx):
                    ctx.sp_write("k", 1)
                    ctx.yield_terminate()

            return TSp

        sp_cycles, _ = _measure_cycles(with_sp)
        results["scratchpad store"] = (
            sp_cycles - base_cycles,
            costs.scratchpad_access,
        )

        def with_yield(rt):
            @rt.register
            class TY(UDThread):
                @event
                def go(self, ctx):
                    ctx.yield_()  # keep thread: yield instead of dealloc

            return TY

        y_cycles, _ = _measure_cycles(with_yield)
        results["thread yield"] = (
            y_cycles - costs.event_dispatch,
            costs.thread_yield,
        )
        return results

    results = run_once(benchmark, measure_all)
    lines = ["Table 2 — lane operation costs (measured vs specified)"]
    for op, (measured, specified) in results.items():
        lines.append(f"  {op:28} measured {measured:4.0f}  table {specified}")
        assert measured == specified, op
    save_results("table2_costs", "\n".join(lines))


@pytest.mark.benchmark(group="table2")
def test_simulator_event_throughput(benchmark):
    """Host-side events/second of the DES (the Fastsim-analog speed)."""
    from repro.graph import rmat
    from repro.harness import run_pagerank

    graph = rmat(9, seed=48)

    def run_one():
        return run_pagerank(graph, nodes=4, max_degree=32)

    rec = run_once(benchmark, run_one)
    events = rec.extra["stats"].events_executed
    benchmark.extra_info["events"] = events
    assert events > 10_000
