"""Table 5: lines-of-code programmability metrics.

Prints this repo's LoC for each Table 5 row next to the paper's UDWeave
numbers.  Absolute counts differ (Python vs UDWeave, and the paper's SHT
and SHMEM carry far more production machinery), but the *shape* claim —
application kernels are a few hundred lines and the big abstractions are
reusable libraries an order of magnitude larger than do_all-style glue —
is checkable."""

from __future__ import annotations

import pytest

from repro.harness import TABLE5_PAPER_LOC, repo_loc, table5_loc

from conftest import run_once


@pytest.mark.benchmark(group="table5")
def test_table5_loc_metrics(benchmark, save_results):
    measured = run_once(benchmark, table5_loc)

    lines = [
        "Table 5 — Code sizes (LoC): this repo vs the paper's UDWeave",
        f"{'component':36}{'repro':>8}{'paper UD':>10}",
        "-" * 54,
    ]
    for row, paper in TABLE5_PAPER_LOC.items():
        lines.append(f"{row:36}{measured[row]:>8}{paper:>10}")
    total = repo_loc()
    lines.append("-" * 54)
    lines.append(f"{'whole package (src/repro)':36}{total:>8}{'6,020+':>10}")

    # shape claims from §5.4.2
    kernels = [measured[k] for k in ("PR", "BFS", "TC")]
    assert all(100 < k < 600 for k in kernels), (
        "application kernels should be a few hundred lines"
    )
    assert measured["KV map-shuffle-reduce"] > 5 * measured["do_all (uses KVMSR)"]
    assert measured["Scalable Hash Table"] > measured["Parallel Graph Abstraction"]
    benchmark.extra_info["package_loc"] = total
    save_results("table5_loc", "\n".join(lines))
