"""Traced smoke run: record a seeded PageRank and validate the exports.

Runs one small PageRank with the flight recorder at the ``full`` tier,
writes the Chrome ``trace_event`` JSON and the ``perflog.tsv``, and then
checks the trace actually parses and carries the three track families the
recorder promises (lane busy spans, network/DRAM channel admissions, and
KVMSR phase spans).  CI runs this and uploads the trace as an artifact,
so every green build ships a timeline you can drop into chrome://tracing.

Usage::

    PYTHONPATH=src python benchmarks/trace_smoke.py --out-dir trace_out
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

GRAPH_SCALE = 8
GRAPH_SEED = 7
MACHINE_NODES = 4


def run_traced(out_dir: Path) -> dict:
    """One recorded PageRank; returns {"trace": path, "perflog": path}."""
    from repro.apps.pagerank import PageRankApp
    from repro.graph.generators import rmat
    from repro.harness import write_chrome_trace, write_perflog_tsv
    from repro.harness.runner import BENCH_BLOCK_SIZE, bench_config
    from repro.observe import make_recorder
    from repro.udweave import UpDownRuntime

    rt = UpDownRuntime(
        bench_config(MACHINE_NODES), recorder=make_recorder("full")
    )
    app = PageRankApp(
        rt, rmat(GRAPH_SCALE, seed=GRAPH_SEED), block_size=BENCH_BLOCK_SIZE
    )
    app.run(iterations=1)

    out_dir.mkdir(parents=True, exist_ok=True)
    trace_path = write_chrome_trace(out_dir / "pagerank_trace.json", rt.sim)
    perflog_path = write_perflog_tsv(out_dir / "perflog.tsv", rt.sim)
    return {"trace": trace_path, "perflog": perflog_path}


def validate_trace(trace_path: Path) -> dict:
    """Parse the trace and assert the required tracks; returns counts."""
    data = json.loads(trace_path.read_text())
    events = data["traceEvents"]
    counts = {
        "lane": sum(1 for e in events if e.get("cat") == "lane"),
        "channel": sum(
            1 for e in events if e.get("cat") in ("inj", "dram")
        ),
        "kvmsr": sum(1 for e in events if e.get("cat") == "kvmsr"),
    }
    missing = [track for track, n in counts.items() if n == 0]
    if missing:
        raise SystemExit(f"trace is missing tracks: {missing}")
    return counts


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out-dir",
        type=Path,
        default=REPO_ROOT / "trace_out",
        help="directory for the trace JSON and perflog.tsv",
    )
    args = parser.parse_args(argv)

    paths = run_traced(args.out_dir)
    counts = validate_trace(paths["trace"])
    perflog_lines = paths["perflog"].read_text().count("\n")
    print(
        f"trace ok: {counts['lane']} lane spans, "
        f"{counts['channel']} channel admissions, "
        f"{counts['kvmsr']} kvmsr events -> {paths['trace']}"
    )
    print(f"perflog ok: {perflog_lines} rows -> {paths['perflog']}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
